#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace vada {

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      CvMutexLock lock(mutex_);
      cv_.wait(lock, [this]() VADA_REQUIRES(mutex_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    tasks_executed_.fetch_add(n, std::memory_order_relaxed);
    return;
  }

  // Shared loop state: workers and the caller race on next_, each
  // claiming iterations until the range is exhausted. done_ counts
  // completed iterations so the caller knows when in-flight work on
  // other threads has finished (it cannot return while a worker is
  // still inside fn).
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<LoopState>();

  auto drain = [state, n, &fn, this] {
    size_t ran = 0;
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
      ++ran;
    }
    if (ran == 0) return;
    tasks_executed_.fetch_add(ran, std::memory_order_relaxed);
    if (state->done.fetch_add(ran, std::memory_order_acq_rel) + ran == n) {
      // Last iteration: wake the caller. Takes the lock so the notify
      // cannot slip between the caller's predicate check and its wait.
      std::lock_guard<std::mutex> lock(state->mutex);
      state->cv.notify_all();
    }
  };

  // One helper per worker is enough — each helper loops until the
  // index range is empty, so extra helpers would find nothing to do.
  size_t helpers = std::min(threads_.size(), n - 1);
  {
    MutexLock lock(mutex_);
    if (stop_) helpers = 0;
    for (size_t i = 0; i < helpers; ++i) queue_.emplace_back(drain);
  }
  for (size_t i = 0; i < helpers; ++i) cv_.notify_one();

  drain();  // caller participates: completion never depends on a free worker

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
  // Helpers that dequeue after this point see next >= n and exit
  // immediately; state is kept alive by their shared_ptr captures.
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(
      [this, fn = std::move(fn)] {
        fn();
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      });
  std::future<void> future = task->get_future();
  bool inline_run = threads_.empty();
  if (!inline_run) {
    MutexLock lock(mutex_);
    if (stop_) {
      inline_run = true;
    } else {
      queue_.emplace_back([task] { (*task)(); });
    }
  }
  if (inline_run) {
    (*task)();
  } else {
    cv_.notify_one();
  }
  return future;
}

}  // namespace vada
