#include "common/strings.h"

#include <cctype>

namespace vada {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> TokenizeIdentifier(std::string_view name) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    if (c == '_' || c == '-' || c == ' ' || c == '.') {
      flush();
      continue;
    }
    // camelCase boundary: lowercase/digit followed by uppercase.
    if (std::isupper(c) && !current.empty() &&
        !std::isupper(static_cast<unsigned char>(current.back()))) {
      flush();
    }
    current += static_cast<char>(std::tolower(c));
  }
  flush();
  return tokens;
}

bool IsDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace vada
