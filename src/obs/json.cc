#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace vada::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    bool ok = Value() && (SkipWs(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = error_.empty()
                   ? "trailing content at offset " + std::to_string(pos_)
                   : error_;
    }
    return ok;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char* c) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Consume(char expected) {
    char c;
    if (!Peek(&c) || c != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
                return Fail("bad \\u escape");
              }
              ++pos_;
            }
            break;
          default:
            return Fail("bad escape");
        }
      }
    }
    return Fail("unterminated string");
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    char* end = nullptr;
    std::string num(text_.substr(start, pos_ - start));
    std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Fail("malformed number");
    return true;
  }

  bool Value() {
    char c;
    if (!Peek(&c)) return Fail("expected value");
    switch (c) {
      case '{': {
        ++pos_;
        char n;
        if (Peek(&n) && n == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          if (!String()) return false;
          if (!Consume(':')) return false;
          if (!Value()) return false;
          if (!Peek(&n)) return Fail("unterminated object");
          if (n == ',') {
            ++pos_;
            continue;
          }
          return Consume('}');
        }
      }
      case '[': {
        ++pos_;
        char n;
        if (Peek(&n) && n == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          if (!Value()) return false;
          if (!Peek(&n)) return Fail("unterminated array");
          if (n == ',') {
            ++pos_;
            continue;
          }
          return Consume(']');
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonLint(std::string_view text, std::string* error) {
  return Linter(text).Run(error);
}

}  // namespace vada::obs
