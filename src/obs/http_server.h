#ifndef VADA_OBS_HTTP_SERVER_H_
#define VADA_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace vada::obs {

/// One parsed request. Only what the introspection routes need: method,
/// path (query string stripped) and the raw query text.
struct HttpRequest {
  std::string method;  ///< "GET", "HEAD", ...
  std::string path;    ///< "/metrics"
  std::string query;   ///< text after '?', no parsing
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal, dependency-free HTTP/1.0-style server for live introspection
/// (DESIGN.md §5g): a blocking accept loop on one dedicated thread,
/// exact-match routes, one request per connection (`Connection: close`).
/// It binds to 127.0.0.1 only — this is an operator window into the
/// process, not a public endpoint — and is deliberately not a general
/// web server: no keep-alive, no chunking, no TLS.
///
/// Thread-safety: Handle() must finish before Start(); handlers run on
/// the server thread and must be safe against the threads that mutate
/// the data they expose (the introspection routes only read mutex- or
/// atomic-guarded state). Stop() is idempotent and joins the thread.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers the exact-match route `path`. Later registrations of the
  /// same path win. Unknown paths get 404; "/" returns a plain-text
  /// index of the registered routes.
  void Handle(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  /// port()), then starts the accept loop on a dedicated thread.
  Status Start(uint16_t port);

  /// Closes the listening socket and joins the accept thread. Safe to
  /// call repeatedly and from the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The actually bound port (resolves port 0), 0 when not running.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Requests served since Start (including 404s).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeClient(int client_fd);
  HttpResponse Dispatch(const HttpRequest& request);

  mutable Mutex mutex_;
  std::map<std::string, Handler> routes_ VADA_GUARDED_BY(mutex_);
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
};

}  // namespace vada::obs

#endif  // VADA_OBS_HTTP_SERVER_H_
