#ifndef VADA_OBS_SESSION_REGISTRY_H_
#define VADA_OBS_SESSION_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace vada::obs {

/// What one session publishes about itself for the /sessions endpoint.
/// `fields` is ordered free-form detail (relation counts, versions, run
/// counters); values are rendered as JSON strings.
struct SessionSnapshot {
  std::string name;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Process-wide registry of live sessions, the data source behind the
/// introspection server's /sessions route and the seed of the
/// multi-tenant service's session table (ROADMAP item 1).
///
/// Push model: the owning thread publishes a fresh SessionSnapshot after
/// every run (SessionHandle::Update), and the HTTP thread only ever
/// reads stored copies — it never calls into live session objects, so
/// there is nothing to race with.
class SessionRegistry {
 public:
  /// Owning registration token; unregisters in its destructor. Movable,
  /// not copyable. A default-constructed handle is inert (the disabled-
  /// observability case costs nothing).
  class SessionHandle {
   public:
    SessionHandle() = default;
    SessionHandle(SessionRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    ~SessionHandle() { Release(); }

    SessionHandle(SessionHandle&& other) noexcept
        : registry_(other.registry_), id_(other.id_) {
      other.registry_ = nullptr;
    }
    SessionHandle& operator=(SessionHandle&& other) noexcept {
      if (this != &other) {
        Release();
        registry_ = other.registry_;
        id_ = other.id_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    SessionHandle(const SessionHandle&) = delete;
    SessionHandle& operator=(const SessionHandle&) = delete;

    /// Replaces this session's published snapshot.
    void Update(SessionSnapshot snapshot);

    bool valid() const { return registry_ != nullptr; }

   private:
    void Release();

    SessionRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  SessionRegistry() = default;
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Registers a session under `name` (not required to be unique — the
  /// handle id disambiguates) with an initial empty snapshot.
  SessionHandle Register(const std::string& name);

  size_t size() const;

  /// Stored snapshots, in registration order.
  std::vector<SessionSnapshot> List() const;

  /// The /sessions payload: {"sessions":[{"id":...,"name":...,...},...]}.
  std::string ToJson() const;

  /// The process-wide default registry (sessions registered by any
  /// WranglingSession with observability on).
  static SessionRegistry& Default();

 private:
  friend class SessionHandle;

  void Update(uint64_t id, SessionSnapshot snapshot);
  void Unregister(uint64_t id);

  mutable Mutex mutex_;
  uint64_t next_id_ VADA_GUARDED_BY(mutex_) = 1;
  std::map<uint64_t, SessionSnapshot> sessions_ VADA_GUARDED_BY(mutex_);
};

}  // namespace vada::obs

#endif  // VADA_OBS_SESSION_REGISTRY_H_
