#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace vada::obs {

namespace {

/// Deterministic map key: name + '\x01' + "k=v" pairs (maps iterate
/// sorted, so equal label sets serialize identically).
std::string EntryKey(const std::string& name,
                     const std::map<std::string, std::string>& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

/// Escapes a label value per the Prometheus text exposition format
/// (version 0.0.4): backslash, double-quote and line feed — and nothing
/// else; \uXXXX-style escapes are JSON, not exposition format.
std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderLabels(const std::map<std::string, std::string>& labels,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + PromEscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

std::string FmtDouble(double v) {
  // %g keeps integers terse (1234 not 1234.000000) and bounds are exact.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  // upper_bound is strict; bounds are inclusive upper limits.
  if (i > 0 && bounds_[i - 1] == value) --i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::DefaultLatencyBucketsSeconds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const MetricSample* MetricsSnapshot::Find(
    const std::string& name,
    const std::map<std::string, std::string>& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name != name) continue;
    if (labels.empty() || s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::Value(
    const std::string& name,
    const std::map<std::string, std::string>& labels) const {
  const MetricSample* s = Find(name, labels);
  if (s == nullptr) return 0.0;
  return s->kind == MetricKind::kHistogram ? static_cast<double>(s->count)
                                           : s->value;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(const std::string& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Counter* MetricsRegistry::GetCounter(
    const std::string& name, const std::string& help,
    const std::map<std::string, std::string>& labels) {
  MutexLock lock(mutex_);
  std::string key = EntryKey(name, labels);
  Entry* e = FindOrNull(key);
  if (e == nullptr) {
    Entry entry;
    entry.name = name;
    entry.labels = labels;
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>();
    e = &entries_.emplace(key, std::move(entry)).first->second;
    help_.emplace(name, help);
  }
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(
    const std::string& name, const std::string& help,
    const std::map<std::string, std::string>& labels) {
  MutexLock lock(mutex_);
  std::string key = EntryKey(name, labels);
  Entry* e = FindOrNull(key);
  if (e == nullptr) {
    Entry entry;
    entry.name = name;
    entry.labels = labels;
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
    e = &entries_.emplace(key, std::move(entry)).first->second;
    help_.emplace(name, help);
  }
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& help,
    std::vector<double> bounds,
    const std::map<std::string, std::string>& labels) {
  MutexLock lock(mutex_);
  std::string key = EntryKey(name, labels);
  Entry* e = FindOrNull(key);
  if (e == nullptr) {
    Entry entry;
    entry.name = name;
    entry.labels = labels;
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
    e = &entries_.emplace(key, std::move(entry)).first->second;
    help_.emplace(name, help);
  }
  return e->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = static_cast<double>(e.gauge->value());
        break;
      case MetricKind::kHistogram:
        s.bucket_bounds = e.histogram->bounds();
        s.bucket_counts = e.histogram->bucket_counts();
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsRegistry::RenderPrometheus() const {
  MetricsSnapshot snap = Snapshot();
  // Group samples by family, keeping per-family sample order stable.
  std::map<std::string, std::vector<const MetricSample*>> families;
  for (const MetricSample& s : snap.samples) families[s.name].push_back(&s);

  std::map<std::string, std::string> help;
  {
    MutexLock lock(mutex_);
    help = help_;
  }

  std::string out;
  for (const auto& [name, samples] : families) {
    auto h = help.find(name);
    if (h != help.end() && !h->second.empty()) {
      out += "# HELP " + name + " " + h->second + "\n";
    }
    const char* type = "untyped";
    switch (samples.front()->kind) {
      case MetricKind::kCounter:
        type = "counter";
        break;
      case MetricKind::kGauge:
        type = "gauge";
        break;
      case MetricKind::kHistogram:
        type = "histogram";
        break;
    }
    out += "# TYPE " + name + " " + std::string(type) + "\n";
    for (const MetricSample* s : samples) {
      if (s->kind != MetricKind::kHistogram) {
        out += name + RenderLabels(s->labels) + " " + FmtDouble(s->value) +
               "\n";
        continue;
      }
      uint64_t cumulative = 0;
      for (size_t i = 0; i < s->bucket_bounds.size(); ++i) {
        cumulative += s->bucket_counts[i];
        out += name + "_bucket" +
               RenderLabels(s->labels, "le", FmtDouble(s->bucket_bounds[i])) +
               " " + std::to_string(cumulative) + "\n";
      }
      cumulative += s->bucket_counts.back();
      out += name + "_bucket" + RenderLabels(s->labels, "le", "+Inf") + " " +
             std::to_string(cumulative) + "\n";
      out += name + "_sum" + RenderLabels(s->labels) + " " +
             FmtDouble(s->sum) + "\n";
      out += name + "_count" + RenderLabels(s->labels) + " " +
             std::to_string(s->count) + "\n";
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace vada::obs
