#ifndef VADA_OBS_CHROME_TRACE_H_
#define VADA_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.h"

namespace vada::obs {

/// One complete ("ph":"X") event of the Chrome trace-event format,
/// loadable in chrome://tracing and Perfetto (ui.perfetto.dev).
struct ChromeTraceEvent {
  std::string name;
  std::string category;
  uint64_t ts_us = 0;   ///< start, microseconds (monotonic process base)
  uint64_t dur_us = 0;  ///< duration, microseconds
  int tid = 1;          ///< lane within the trace view
  /// Extra key/value detail shown in the event's args pane. Values are
  /// emitted as JSON strings.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Accumulates events and serialises the JSON object format:
/// {"traceEvents":[...],"displayTimeUnit":"ms"}.
class ChromeTraceBuilder {
 public:
  void Add(ChromeTraceEvent event) { events_.push_back(std::move(event)); }

  /// Adds every finished span from `collector`. Spans recorded by the
  /// collector's first thread (lane 0) land on `tid`; each further
  /// recording thread (pool workers) gets its own consecutive tid, so
  /// concurrent worker spans never interleave on one trace lane.
  void AddSpans(const SpanCollector& collector, int tid = 2);

  size_t size() const { return events_.size(); }

  std::string ToJson() const;

 private:
  std::vector<ChromeTraceEvent> events_;
};

}  // namespace vada::obs

#endif  // VADA_OBS_CHROME_TRACE_H_
