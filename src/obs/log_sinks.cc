#include "obs/log_sinks.h"

#include "obs/json.h"

namespace vada::obs {

void JsonlLogSink::Write(const LogRecord& record) {
  if (out_ == nullptr || !*out_) return;
  *out_ << "{\"ts_ns\":" << record.unix_nanos << ",\"level\":\""
        << LogLevelName(record.level) << "\",\"component\":\""
        << JsonEscape(record.component) << "\",\"message\":\""
        << JsonEscape(record.message) << "\",\"thread\":" << record.thread_id
        << "}\n";
  out_->flush();
}

void RingBufferLogSink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(record);
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<LogRecord> RingBufferLogSink::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {records_.begin(), records_.end()};
}

size_t RingBufferLogSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace vada::obs
