#ifndef VADA_OBS_SPAN_H_
#define VADA_OBS_SPAN_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vada::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch; the
/// common time base for spans and trace events (Chrome traces only need
/// relative timestamps).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One finished span. Depth is the nesting level at open time; Chrome
/// trace viewers reconstruct the tree from nested [start, end) intervals.
struct SpanRecord {
  std::string name;
  std::string category;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  size_t depth = 0;
};

/// Collects finished spans for one session. Thread-safe appends; spans
/// from concurrent sessions go to their own collectors.
class SpanCollector {
 public:
  void Record(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
  }

  std::vector<SpanRecord> spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
  }

  /// Current nesting depth bookkeeping for ScopedSpan.
  size_t EnterScope() { return depth_++; }
  void LeaveScope() {
    if (depth_ > 0) --depth_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  size_t depth_ = 0;
};

/// RAII timer: times its scope, records the elapsed seconds into an
/// optional histogram and the interval into an optional collector. Both
/// may be null — then the constructor does not even read the clock, which
/// is what makes instrumented code near-free when observability is off.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* collector, Histogram* histogram,
             std::string name, std::string category = "")
      : collector_(collector), histogram_(histogram) {
    if (collector_ == nullptr && histogram_ == nullptr) return;
    name_ = std::move(name);
    category_ = std::move(category);
    if (collector_ != nullptr) depth_ = collector_->EnterScope();
    start_ns_ = MonotonicNanos();
  }

  ~ScopedSpan() {
    if (collector_ == nullptr && histogram_ == nullptr) return;
    uint64_t end_ns = MonotonicNanos();
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(end_ns - start_ns_) * 1e-9);
    }
    if (collector_ != nullptr) {
      collector_->LeaveScope();
      collector_->Record(
          SpanRecord{std::move(name_), std::move(category_), start_ns_,
                     end_ns, depth_});
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCollector* collector_;
  Histogram* histogram_;
  std::string name_;
  std::string category_;
  uint64_t start_ns_ = 0;
  size_t depth_ = 0;
};

}  // namespace vada::obs

#endif  // VADA_OBS_SPAN_H_
