#ifndef VADA_OBS_SPAN_H_
#define VADA_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace vada::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch; the
/// common time base for spans and trace events (Chrome traces only need
/// relative timestamps).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One finished span. Depth is the nesting level at open time *on its
/// thread*; lane is a small dense id for the recording thread (0 for the
/// first thread that opened a span on the collector, usually the session
/// thread). Chrome trace viewers reconstruct per-lane trees from nested
/// [start, end) intervals, so spans from concurrent pool workers must
/// not share a lane — that is exactly what lane separates.
struct SpanRecord {
  std::string name;
  std::string category;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  size_t depth = 0;
  uint64_t lane = 0;
};

/// Collects finished spans for one session. Fully thread-safe: appends
/// take the mutex, and scope (depth/lane) bookkeeping is per-thread, so
/// pool workers can record concurrently with the session thread without
/// corrupting each other's nesting.
class SpanCollector {
 public:
  /// What a ScopedSpan needs to remember from open time.
  struct Scope {
    uint64_t lane = 0;
    size_t depth = 0;
  };

  void Record(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
  }

  std::vector<SpanRecord> spans() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
  }

  /// Opens a scope on the calling thread: returns the thread's lane and
  /// its nesting depth before the open.
  Scope EnterScope() {
    ThreadState* state = LocalState();
    return Scope{state->lane, state->depth++};
  }
  void LeaveScope() {
    ThreadState* state = LocalState();
    if (state->depth > 0) --state->depth;
  }

  /// Number of distinct threads that have opened spans so far.
  uint64_t lanes() const { return next_lane_.load(std::memory_order_relaxed); }

 private:
  struct ThreadState {
    uint64_t lane = 0;
    size_t depth = 0;
  };

  /// Per-(thread, collector) scope state. Keyed by a never-reused
  /// collector id, not the address, so a collector allocated where a
  /// dead one lived cannot inherit stale lanes. Entries of dead
  /// collectors are pruned opportunistically once the map grows.
  ThreadState* LocalState() {
    thread_local std::unordered_map<uint64_t, ThreadState> states;
    auto [it, inserted] = states.try_emplace(id_);
    if (inserted) {
      it->second.lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
      if (states.size() > 256) {
        for (auto sit = states.begin(); sit != states.end();) {
          bool idle = sit->second.depth == 0 && sit->first != id_;
          sit = idle ? states.erase(sit) : ++sit;
        }
        it = states.find(id_);  // rehash may have moved the entry
      }
    }
    return &it->second;
  }

  static uint64_t NextCollectorId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t id_ = NextCollectorId();
  std::atomic<uint64_t> next_lane_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// RAII timer: times its scope, records the elapsed seconds into an
/// optional histogram and the interval into an optional collector. Both
/// may be null — then the constructor does not even read the clock, which
/// is what makes instrumented code near-free when observability is off.
class ScopedSpan {
 public:
  ScopedSpan(SpanCollector* collector, Histogram* histogram,
             std::string name, std::string category = "")
      : collector_(collector), histogram_(histogram) {
    if (collector_ == nullptr && histogram_ == nullptr) return;
    name_ = std::move(name);
    category_ = std::move(category);
    if (collector_ != nullptr) scope_ = collector_->EnterScope();
    start_ns_ = MonotonicNanos();
  }

  ~ScopedSpan() {
    if (collector_ == nullptr && histogram_ == nullptr) return;
    uint64_t end_ns = MonotonicNanos();
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(end_ns - start_ns_) * 1e-9);
    }
    if (collector_ != nullptr) {
      collector_->LeaveScope();
      collector_->Record(
          SpanRecord{std::move(name_), std::move(category_), start_ns_,
                     end_ns, scope_.depth, scope_.lane});
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCollector* collector_;
  Histogram* histogram_;
  std::string name_;
  std::string category_;
  uint64_t start_ns_ = 0;
  SpanCollector::Scope scope_;
};

}  // namespace vada::obs

#endif  // VADA_OBS_SPAN_H_
