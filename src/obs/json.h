#ifndef VADA_OBS_JSON_H_
#define VADA_OBS_JSON_H_

#include <string>
#include <string_view>

namespace vada::obs {

/// Escapes `s` for inclusion inside a double-quoted JSON string (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// Minimal recursive-descent JSON syntax checker. Accepts exactly one
/// top-level value. Used by the exporter tests and by BENCH_*.json
/// emission; not a parser — it never builds a document tree.
bool JsonLint(std::string_view text, std::string* error = nullptr);

}  // namespace vada::obs

#endif  // VADA_OBS_JSON_H_
