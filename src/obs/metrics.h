#ifndef VADA_OBS_METRICS_H_
#define VADA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace vada::obs {

/// Metric naming convention: `vada_<layer>_<name>`, e.g.
/// `vada_datalog_rules_fired` or `vada_transducer_execute_seconds`.
/// Durations are always seconds (Prometheus convention).

/// Monotonically increasing counter. Increments are lock-free and safe
/// from any thread; reads are relaxed snapshots.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (relation cardinalities, versions).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: per-bucket atomic counters plus an atomic sum,
/// so hot-path Observe() never takes a lock. Bucket bounds are inclusive
/// upper bounds; observations above the last bound land in the implicit
/// +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Power-of-ten latency buckets from 1us to 10s, in seconds.
  static std::vector<double> DefaultLatencyBucketsSeconds();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size == bounds().size() + 1,
  /// the last entry being the +Inf bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric (one label combination).
struct MetricSample {
  std::string name;
  std::map<std::string, std::string> labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                  ///< counter / gauge value
  std::vector<double> bucket_bounds;   ///< histogram only
  std::vector<uint64_t> bucket_counts; ///< non-cumulative, +Inf last
  uint64_t count = 0;                  ///< histogram only
  double sum = 0.0;                    ///< histogram only
};

/// Consistent snapshot of a registry, detached from the live atomics.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  bool empty() const { return samples.empty(); }
  /// First sample whose name (and, when given, labels) match; nullptr
  /// when absent. Empty `labels` matches any label set.
  const MetricSample* Find(
      const std::string& name,
      const std::map<std::string, std::string>& labels = {}) const;
  /// Counter/gauge value (histograms: observation count); 0 when absent.
  double Value(const std::string& name,
               const std::map<std::string, std::string>& labels = {}) const;
};

/// Owns metrics keyed by (family name, label set). Get* registers on
/// first use and returns a pointer that stays valid for the registry's
/// lifetime — callers on hot paths should cache it. Registration takes a
/// mutex; increments on the returned objects are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::map<std::string, std::string>& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::map<std::string, std::string>& labels = {});
  /// `bounds` is only consulted when this (name, labels) pair is new.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const std::map<std::string, std::string>& labels = {});

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (version 0.0.4): families sorted
  /// by name with # HELP / # TYPE headers, histograms as cumulative
  /// <name>_bucket{le=...} plus <name>_sum / <name>_count.
  std::string RenderPrometheus() const;

  /// The process-wide default registry.
  static MetricsRegistry& Default();

 private:
  struct Entry {
    std::string name;
    std::map<std::string, std::string> labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrNull(const std::string& key) VADA_REQUIRES(mutex_);

  mutable Mutex mutex_;
  // key: name + serialized labels
  std::map<std::string, Entry> entries_ VADA_GUARDED_BY(mutex_);
  // per family name
  std::map<std::string, std::string> help_ VADA_GUARDED_BY(mutex_);
};

}  // namespace vada::obs

#endif  // VADA_OBS_METRICS_H_
