#include "obs/obs.h"

#include <string>

#include "common/logging.h"
#include "obs/chrome_trace.h"
#include "obs/process_stats.h"

namespace vada::obs {

ObsContext::ObsContext(ObsOptions options) : options_(options) {
  if (!options_.enabled) return;
  if (options_.registry == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    options_.registry = owned_registry_.get();
  }
  if (options_.collect_spans) {
    spans_ = std::make_unique<SpanCollector>();
  }
  sessions_ = options_.sessions != nullptr ? options_.sessions
                                           : &SessionRegistry::Default();
  if (options_.http_port >= 0 && options_.http_port <= 65535) {
    StartHttpServer();
  }
}

// Out of line so the header does not need the full HttpServer teardown.
ObsContext::~ObsContext() = default;

void ObsContext::StartHttpServer() {
  http_ = std::make_unique<HttpServer>();

  MetricsRegistry* registry = options_.registry;
  SpanCollector* spans = spans_.get();
  SessionRegistry* sessions = sessions_;
  HttpServer* server = http_.get();

  // All four handlers run on the server thread and touch only
  // mutex-/atomic-guarded state (registry, collector, session registry),
  // never live session objects.
  http_->Handle("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  http_->Handle("/metrics", [registry, server](const HttpRequest&) {
    HttpResponse response;
    PublishProcessMetrics(registry);  // scrape-fresh RSS / peak RSS
    registry->GetGauge("vada_obs_http_requests",
                       "Requests the introspection server has answered")
        ->Set(static_cast<int64_t>(server->requests_served()));
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry->RenderPrometheus();
    return response;
  });
  http_->Handle("/sessions", [sessions](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = sessions->ToJson();
    return response;
  });
  http_->Handle("/trace", [spans](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    ChromeTraceBuilder builder;
    if (spans != nullptr) builder.AddSpans(*spans, /*tid=*/2);
    response.body = builder.ToJson();
    return response;
  });

  Status status = http_->Start(static_cast<uint16_t>(options_.http_port));
  if (!status.ok()) {
    // Introspection must never take the wrangling pipeline down with it.
    VADA_LOG(kWarning, "obs") << "introspection server disabled: "
                              << status.ToString();
    http_.reset();
  }
}

}  // namespace vada::obs
