#include "obs/process_stats.h"

#include <cstdio>
#include <cstring>
#include <thread>

#ifndef _WIN32
#include <sys/resource.h>
#endif

namespace vada::obs {

namespace {

/// Parses one "VmXXX:   12345 kB" line into bytes; 0 when absent.
int64_t ParseStatusLine(const char* line, const char* key) {
  size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return 0;
  long long kb = 0;
  if (std::sscanf(line + key_len, " %lld", &kb) != 1) return 0;
  return static_cast<int64_t>(kb) * 1024;
}

}  // namespace

ProcessMemory SampleProcessMemory() {
  ProcessMemory mem;
#ifndef _WIN32
  // Primary source: /proc/self/status has both current and peak RSS.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (int64_t v = ParseStatusLine(line, "VmRSS:")) mem.rss_bytes = v;
      if (int64_t v = ParseStatusLine(line, "VmHWM:")) mem.peak_rss_bytes = v;
      if (mem.rss_bytes != 0 && mem.peak_rss_bytes != 0) break;
    }
    std::fclose(f);
  }
  if (mem.peak_rss_bytes == 0) {
    // Fallback (macOS, stripped-down containers): getrusage only has the
    // high-water mark — in kilobytes on Linux, bytes on macOS.
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#ifdef __APPLE__
      mem.peak_rss_bytes = static_cast<int64_t>(usage.ru_maxrss);
#else
      mem.peak_rss_bytes = static_cast<int64_t>(usage.ru_maxrss) * 1024;
#endif
    }
  }
#endif
  if (mem.rss_bytes == 0) mem.rss_bytes = mem.peak_rss_bytes;
  return mem;
}

void PublishProcessMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  ProcessMemory mem = SampleProcessMemory();
  registry
      ->GetGauge("vada_process_rss_bytes",
                 "Process resident set size, sampled at exposition time")
      ->Set(mem.rss_bytes);
  registry
      ->GetGauge("vada_process_peak_rss_bytes",
                 "Process peak resident set size (VmHWM / ru_maxrss)")
      ->Set(mem.peak_rss_bytes);
  registry
      ->GetGauge("vada_process_hardware_threads",
                 "std::thread::hardware_concurrency of this host")
      ->Set(static_cast<int64_t>(std::thread::hardware_concurrency()));
}

}  // namespace vada::obs
