#ifndef VADA_OBS_LOG_SINKS_H_
#define VADA_OBS_LOG_SINKS_H_

#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.h"

namespace vada::obs {

/// Structured sink: one JSON object per line
/// ({"ts_ns":...,"level":"INFO","component":"...","message":"...",
///   "thread":...}), suitable for jq / log shippers.
class JsonlLogSink : public LogSink {
 public:
  /// Writes to a stream the caller keeps alive (tests pass an
  /// ostringstream).
  explicit JsonlLogSink(std::ostream* out) : out_(out) {}
  /// Opens (appends to) `path`.
  explicit JsonlLogSink(const std::string& path)
      : file_(path, std::ios::app), out_(&file_) {}

  void Write(const LogRecord& record) override;

 private:
  std::ofstream file_;
  std::ostream* out_;
};

/// Keeps the last `capacity` records in memory — the test / debugging
/// sink (assert on what was logged without touching stderr).
class RingBufferLogSink : public LogSink {
 public:
  explicit RingBufferLogSink(size_t capacity = 1024) : capacity_(capacity) {}

  void Write(const LogRecord& record) override;

  std::vector<LogRecord> records() const;
  size_t size() const;

 private:
  // The logger serialises Write calls, but records() is read from test
  // threads concurrently with logging — guard the deque.
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<LogRecord> records_;
};

}  // namespace vada::obs

#endif  // VADA_OBS_LOG_SINKS_H_
