#ifndef VADA_OBS_OBS_H_
#define VADA_OBS_OBS_H_

#include <memory>

#include "obs/metrics.h"
#include "obs/span.h"

namespace vada::obs {

/// Observability configuration for a session / orchestrator. With
/// `enabled == false` every instrumentation site degrades to a null-
/// pointer check: no clock reads, no atomics, no allocations.
struct ObsOptions {
  bool enabled = true;
  /// Registry to record into; nullptr means the context owns a private
  /// registry (so concurrent sessions do not mix their numbers). Pass
  /// &MetricsRegistry::Default() to aggregate process-wide.
  MetricsRegistry* registry = nullptr;
  /// Collect a per-session span tree (feeds the Chrome trace export).
  bool collect_spans = true;
};

/// Bundles the live observability objects instrumented layers record
/// into. metrics()/spans() return nullptr when disabled, which is the
/// signal instrumentation sites use to skip all work.
class ObsContext {
 public:
  explicit ObsContext(ObsOptions options = ObsOptions()) : options_(options) {
    if (!options_.enabled) return;
    if (options_.registry == nullptr) {
      owned_registry_ = std::make_unique<MetricsRegistry>();
      options_.registry = owned_registry_.get();
    }
    if (options_.collect_spans) {
      spans_ = std::make_unique<SpanCollector>();
    }
  }

  bool enabled() const { return options_.enabled; }
  MetricsRegistry* metrics() const {
    return options_.enabled ? options_.registry : nullptr;
  }
  SpanCollector* spans() const { return spans_.get(); }

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  std::unique_ptr<SpanCollector> spans_;
};

}  // namespace vada::obs

#endif  // VADA_OBS_OBS_H_
