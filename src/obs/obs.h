#ifndef VADA_OBS_OBS_H_
#define VADA_OBS_OBS_H_

#include <memory>

#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/session_registry.h"
#include "obs/span.h"

namespace vada::obs {

/// Observability configuration for a session / orchestrator. With
/// `enabled == false` every instrumentation site degrades to a null-
/// pointer check: no clock reads, no atomics, no allocations.
struct ObsOptions {
  bool enabled = true;
  /// Registry to record into; nullptr means the context owns a private
  /// registry (so concurrent sessions do not mix their numbers). Pass
  /// &MetricsRegistry::Default() to aggregate process-wide.
  MetricsRegistry* registry = nullptr;
  /// Collect a per-session span tree (feeds the Chrome trace export).
  bool collect_spans = true;
  /// Live introspection server (DESIGN.md §5g): < 0 (default) starts
  /// nothing; >= 0 serves /metrics, /healthz, /sessions and /trace on
  /// 127.0.0.1:<http_port>, with 0 binding a kernel-assigned ephemeral
  /// port (read it back via ObsContext::http_port()). Requires
  /// `enabled`.
  int http_port = -1;
  /// Session registry behind the /sessions route; nullptr means the
  /// process-wide SessionRegistry::Default().
  SessionRegistry* sessions = nullptr;
};

/// Bundles the live observability objects instrumented layers record
/// into. metrics()/spans() return nullptr when disabled, which is the
/// signal instrumentation sites use to skip all work.
class ObsContext {
 public:
  explicit ObsContext(ObsOptions options = ObsOptions());
  ~ObsContext();

  bool enabled() const { return options_.enabled; }
  MetricsRegistry* metrics() const {
    return options_.enabled ? options_.registry : nullptr;
  }
  SpanCollector* spans() const { return spans_.get(); }

  /// The session registry introspection reports on; nullptr when the
  /// context is disabled.
  SessionRegistry* sessions() const {
    return options_.enabled ? sessions_ : nullptr;
  }

  /// The embedded introspection server; nullptr unless `http_port >= 0`
  /// was configured, the context is enabled, and the bind succeeded.
  const HttpServer* http_server() const { return http_.get(); }
  /// The introspection server's bound port (resolves the ephemeral
  /// port-0 case); 0 when no server is running.
  uint16_t http_port() const { return http_ == nullptr ? 0 : http_->port(); }

 private:
  void StartHttpServer();

  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> owned_registry_;
  std::unique_ptr<SpanCollector> spans_;
  SessionRegistry* sessions_ = nullptr;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace vada::obs

#endif  // VADA_OBS_OBS_H_
