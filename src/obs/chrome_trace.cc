#include "obs/chrome_trace.h"

#include "obs/json.h"

namespace vada::obs {

void ChromeTraceBuilder::AddSpans(const SpanCollector& collector, int tid) {
  for (const SpanRecord& span : collector.spans()) {
    ChromeTraceEvent e;
    e.name = span.name;
    e.category = span.category.empty() ? "span" : span.category;
    e.ts_us = span.start_ns / 1000;
    e.dur_us = (span.end_ns - span.start_ns) / 1000;
    e.tid = tid + static_cast<int>(span.lane);
    Add(std::move(e));
  }
}

std::string ChromeTraceBuilder::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const ChromeTraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\"";
    out += ",\"cat\":\"" + JsonEscape(e.category.empty() ? "event"
                                                        : e.category) + "\"";
    out += ",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(e.ts_us);
    out += ",\"dur\":" + std::to_string(e.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace vada::obs
