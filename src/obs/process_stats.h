#ifndef VADA_OBS_PROCESS_STATS_H_
#define VADA_OBS_PROCESS_STATS_H_

#include <cstdint>

#include "obs/metrics.h"

namespace vada::obs {

/// Point-in-time process memory readings, in bytes. Zero means the
/// platform offered no figure (the sampler never fails hard).
struct ProcessMemory {
  int64_t rss_bytes = 0;       ///< current resident set size
  int64_t peak_rss_bytes = 0;  ///< high-water resident set size
};

/// Samples the process's resident-set size. On Linux this parses
/// /proc/self/status (VmRSS / VmHWM); elsewhere — or when /proc is
/// unavailable — it falls back to getrusage(RUSAGE_SELF).ru_maxrss,
/// which only yields the peak. Cheap enough to call per scrape, not
/// per operation.
ProcessMemory SampleProcessMemory();

/// Refreshes the process-level gauges in `registry`:
/// `vada_process_rss_bytes`, `vada_process_peak_rss_bytes` and
/// `vada_process_hardware_threads`. Call before every exposition
/// (/metrics scrape, MetricsReport) so the values are scrape-fresh.
/// No-op on nullptr.
void PublishProcessMetrics(MetricsRegistry* registry);

}  // namespace vada::obs

#endif  // VADA_OBS_PROCESS_STATS_H_
