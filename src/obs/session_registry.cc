#include "obs/session_registry.h"

#include "obs/json.h"

namespace vada::obs {

void SessionRegistry::SessionHandle::Update(SessionSnapshot snapshot) {
  if (registry_ != nullptr) registry_->Update(id_, std::move(snapshot));
}

void SessionRegistry::SessionHandle::Release() {
  if (registry_ != nullptr) registry_->Unregister(id_);
  registry_ = nullptr;
}

SessionRegistry::SessionHandle SessionRegistry::Register(
    const std::string& name) {
  MutexLock lock(mutex_);
  uint64_t id = next_id_++;
  SessionSnapshot snapshot;
  snapshot.name = name;
  sessions_.emplace(id, std::move(snapshot));
  return SessionHandle(this, id);
}

void SessionRegistry::Update(uint64_t id, SessionSnapshot snapshot) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  if (snapshot.name.empty()) snapshot.name = it->second.name;
  it->second = std::move(snapshot);
}

void SessionRegistry::Unregister(uint64_t id) {
  MutexLock lock(mutex_);
  sessions_.erase(id);
}

size_t SessionRegistry::size() const {
  MutexLock lock(mutex_);
  return sessions_.size();
}

std::vector<SessionSnapshot> SessionRegistry::List() const {
  MutexLock lock(mutex_);
  std::vector<SessionSnapshot> out;
  out.reserve(sessions_.size());
  for (const auto& [id, snapshot] : sessions_) out.push_back(snapshot);
  return out;
}

std::string SessionRegistry::ToJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\"sessions\":[";
  bool first = true;
  for (const auto& [id, snapshot] : sessions_) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(id) + ",\"name\":\"" +
           JsonEscape(snapshot.name) + "\"";
    for (const auto& [key, value] : snapshot.fields) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

SessionRegistry& SessionRegistry::Default() {
  static SessionRegistry* registry = new SessionRegistry();
  return *registry;
}

}  // namespace vada::obs
