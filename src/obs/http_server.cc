#include "obs/http_server.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace vada::obs {

#ifdef _WIN32

Status HttpServer::Start(uint16_t) {
  return Status::Unimplemented("HttpServer requires POSIX sockets");
}
void HttpServer::Stop() {}
void HttpServer::Handle(const std::string&, Handler) {}
void HttpServer::AcceptLoop() {}
void HttpServer::ServeClient(int) {}
HttpResponse HttpServer::Dispatch(const HttpRequest&) { return {}; }

#else

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

/// Writes the whole buffer, retrying short writes; best-effort (the peer
/// may close early, which is its prerogative).
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void HttpServer::Handle(const std::string& path, Handler handler) {
  MutexLock lock(mutex_);
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("HttpServer already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // introspection is local
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(std::string("bind(127.0.0.1:") +
                                std::to_string(port) +
                                "): " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocking accept(); close() alone is not
  // guaranteed to on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
  port_.store(0, std::memory_order_release);
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed by Stop()
    }
    // A stalled client must not wedge the introspection loop.
    timeval timeout{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ServeClient(client);
    ::close(client);
  }
}

void HttpServer::ServeClient(int client_fd) {
  // Read until the end of the header block (the routes take no bodies).
  std::string raw;
  char buf[2048];
  while (raw.size() < 64 * 1024 &&
         raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  if (raw.empty()) return;

  HttpRequest request;
  HttpResponse response;
  size_t line_end = raw.find_first_of("\r\n");
  std::string line = raw.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else {
    request.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    size_t q = target.find('?');
    request.path = target.substr(0, q);
    if (q != std::string::npos) request.query = target.substr(q + 1);
    response = Dispatch(request);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (request.method != "HEAD") out += response.body;
  WriteAll(client_fd, out);
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) {
  HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is supported\n";
    return response;
  }
  Handler handler;
  {
    MutexLock lock(mutex_);
    auto it = routes_.find(request.path);
    if (it != routes_.end()) {
      handler = it->second;
    } else if (request.path == "/") {
      response.body = "vada introspection endpoints:\n";
      for (const auto& [path, unused] : routes_) response.body += path + "\n";
      return response;
    }
  }
  if (!handler) {
    response.status = 404;
    response.body = "no route for " + request.path + "\n";
    return response;
  }
  return handler(request);
}

#endif  // _WIN32

}  // namespace vada::obs
