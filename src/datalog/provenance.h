#ifndef VADA_DATALOG_PROVENANCE_H_
#define VADA_DATALOG_PROVENANCE_H_

#include <map>
#include <string>
#include <vector>

#include "kb/tuple.h"

namespace vada::datalog {

/// Why a fact was derived: the rule that fired and the ground positive
/// body atoms it fired on (one derivation per fact — the first one found;
/// Datalog facts may have many proofs, one suffices for explanation).
struct Derivation {
  std::string rule;  ///< rule text, e.g. "tc(X, Y) :- edge(X, Z), tc(Z, Y)."
  std::vector<std::pair<std::string, Tuple>> premises;
};

/// Provenance side-table filled by the evaluator when
/// EvalOptions::record_provenance is set. Supports "why is this fact in
/// the result?" queries as a derivation tree — the fact-level analogue of
/// the architecture's browsable orchestration trace.
class Provenance {
 public:
  Provenance() = default;

  /// Records a derivation for (predicate, fact); first writer wins.
  void Record(const std::string& predicate, const Tuple& fact,
              Derivation derivation);

  bool Has(const std::string& predicate, const Tuple& fact) const;

  /// The stored derivation, or nullptr for EDB/unknown facts.
  const Derivation* Find(const std::string& predicate,
                         const Tuple& fact) const;

  /// Renders the derivation tree rooted at (predicate, fact):
  ///
  ///   tc(1, 3)
  ///     by: tc(X, Y) :- edge(X, Z), tc(Z, Y).
  ///     |- edge(1, 2)  (edb)
  ///     |- tc(2, 3)
  ///        by: tc(X, Y) :- edge(X, Y).
  ///        |- edge(2, 3)  (edb)
  ///
  /// Depth-capped to keep output bounded on deep recursions.
  std::string Explain(const std::string& predicate, const Tuple& fact,
                      size_t max_depth = 8) const;

  size_t size() const { return derivations_.size(); }

 private:
  void ExplainInto(const std::string& predicate, const Tuple& fact,
                   size_t depth, size_t max_depth, const std::string& indent,
                   std::string* out) const;

  std::map<std::pair<std::string, Tuple>, Derivation> derivations_;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_PROVENANCE_H_
