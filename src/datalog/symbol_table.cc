#include "datalog/symbol_table.h"

namespace vada::datalog {

SymbolTable::SymbolTable() {
  for (auto& slot : chunks_) slot.store(nullptr, std::memory_order_relaxed);
}

SymbolTable::~SymbolTable() {
  for (auto& slot : chunks_) delete slot.load(std::memory_order_acquire);
}

SymbolTable& SymbolTable::Global() {
  // Leaked intentionally: ids must stay valid for the whole process,
  // including during static destruction of late observers.
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolId SymbolTable::Intern(const Value& v) {
  MutexLock lock(mutex_);
  auto it = ids_.find(v);
  if (it != ids_.end()) return it->second;
  size_t id = size_.load(std::memory_order_relaxed);
  size_t chunk_index = id >> kChunkShift;
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    // All slots are pre-constructed (null Values) so readers racing on a
    // freshly published chunk never touch vector growth machinery.
    chunk->values.resize(size_t{1} << kChunkShift);
  }
  chunk->values[id & kChunkMask] = v;
  // Publish the chunk (and, transitively, the slot just written) before
  // the id can escape through the map or the size counter.
  chunks_[chunk_index].store(chunk, std::memory_order_release);
  size_.store(id + 1, std::memory_order_release);
  ids_.emplace(v, static_cast<SymbolId>(id));
  heap_bytes_ += v.ApproxBytes();
  return static_cast<SymbolId>(id);
}

std::optional<SymbolId> SymbolTable::Find(const Value& v) const {
  MutexLock lock(mutex_);
  auto it = ids_.find(v);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

size_t SymbolTable::ApproxBytes() const {
  MutexLock lock(mutex_);
  size_t chunks = (size_.load(std::memory_order_relaxed) + kChunkMask) >>
                  kChunkShift;
  size_t bytes = sizeof(SymbolTable) +
                 chunks * ((size_t{1} << kChunkShift) * sizeof(Value) +
                           sizeof(Chunk));
  // Interned payloads are stored twice (chunk slot + map key); count
  // both, like the row engine counted facts + dedup set.
  bytes += 2 * heap_bytes_ - size_.load(std::memory_order_relaxed) *
                                 sizeof(Value);
  bytes += ids_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace vada::datalog
