#include "datalog/analysis/diagnostics.h"

#include <algorithm>

namespace vada::datalog::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* WardedClassName(WardedClass c) {
  switch (c) {
    case WardedClass::kWarded:
      return "warded";
    case WardedClass::kShy:
      return "shy";
    case WardedClass::kUnrestricted:
      return "unrestricted";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (pos.known()) {
    out += pos.ToString() + ": ";
  } else if (rule_index >= 0) {
    out += "rule " + std::to_string(rule_index) + ": ";
  }
  out += SeverityName(severity);
  out += " [" + check_id + "]: " + message;
  if (!fix_hint.empty()) out += " (fix: " + fix_hint + ")";
  return out;
}

size_t AnalysisReport::CountAtSeverity(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string AnalysisReport::ToString() const {
  std::string out;
  // Errors first; within a severity, keep discovery (source) order.
  std::vector<const Diagnostic*> ordered;
  ordered.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return static_cast<int>(a->severity) >
                            static_cast<int>(b->severity);
                   });
  for (const Diagnostic* d : ordered) {
    out += d->ToString();
    out += "\n";
  }
  return out;
}

Status AnalysisReport::ToStatus(const std::string& context) const {
  size_t errors = error_count();
  if (errors == 0) return Status::OK();
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) {
      first = &d;
      break;
    }
  }
  std::string msg = context + ": " + first->ToString();
  if (errors > 1) {
    msg += " (and " + std::to_string(errors - 1) + " more error(s))";
  }
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace vada::datalog::analysis
