#include "datalog/analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "datalog/analysis/dataflow/dataflow.h"
#include "datalog/parser.h"
#include "datalog/stratify.h"

namespace vada::datalog::analysis {

namespace {

/// Best available anchor: the term's own position, else a fallback
/// (enclosing literal / rule head), else unknown.
SourcePos Anchor(const SourcePos& preferred, const SourcePos& fallback) {
  return preferred.known() ? preferred : fallback;
}

/// One analysis pass over one program. Collects diagnostics into the
/// report; each Check* method is independent and total (never bails).
class Checker {
 public:
  Checker(const AnalyzerOptions& options, const Program& program,
          const PredicateCatalog* catalog, AnalysisReport* report)
      : options_(options),
        program_(program),
        catalog_(catalog),
        report_(report) {
    for (const Rule& r : program_.rules) idb_.insert(r.head.predicate);
  }

  void Run() {
    if (options_.check_safety) CheckSafety();
    if (options_.check_stratification) CheckStratification();
    if (options_.check_wardedness) CheckWardedness();
    if (options_.check_catalog) CheckCatalog();
    if (options_.check_dataflow) CheckDataflow();
    if (options_.check_lint) CheckLint();
    if (!options_.goal_predicate.empty()) CheckGoal();
  }

 private:
  void Emit(Severity severity, std::string check_id, int rule_index,
            SourcePos pos, std::string message, std::string fix_hint = "") {
    Diagnostic d;
    d.severity = severity;
    d.check_id = std::move(check_id);
    d.rule_index = rule_index;
    d.pos = pos;
    d.message = std::move(message);
    d.fix_hint = std::move(fix_hint);
    report_->diagnostics.push_back(std::move(d));
  }

  /// Variables bound by positive atoms, then transitively by assignments
  /// whose operands are bound (the range-restriction fixpoint shared
  /// with ValidateRule).
  static std::set<std::string> BoundVariables(const Rule& rule) {
    std::set<std::string> bound;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      for (const Term& t : lit.atom.terms) {
        if (t.is_variable()) bound.insert(t.var());
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAssignment) continue;
        if (bound.count(lit.assign_var) > 0) continue;
        bool operands_ok =
            (!lit.lhs.is_variable() || bound.count(lit.lhs.var()) > 0) &&
            (lit.arith_op == ArithOp::kNone || !lit.rhs.is_variable() ||
             bound.count(lit.rhs.var()) > 0);
        if (operands_ok) {
          bound.insert(lit.assign_var);
          changed = true;
        }
      }
    }
    return bound;
  }

  // -------------------------------------------------------------------
  // (1) Safety / range restriction.
  // -------------------------------------------------------------------
  void CheckSafety() {
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      const int rule_index = static_cast<int>(ri);

      // Aggregates are head-only.
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          for (const Term& t : lit.atom.terms) {
            if (t.is_aggregate()) {
              Emit(Severity::kError, "safety/aggregate-in-body", rule_index,
                   Anchor(t.pos(), lit.pos),
                   "aggregate term " + t.ToString() +
                       " in rule body; aggregates may only appear in heads",
                   "move the aggregation into the head of a helper rule");
            }
          }
        } else if (lit.lhs.is_aggregate() || lit.rhs.is_aggregate()) {
          Emit(Severity::kError, "safety/aggregate-in-body", rule_index,
               lit.pos, "aggregate term in builtin of rule " + rule.ToString(),
               "move the aggregation into the head of a helper rule");
        }
      }

      // Facts must be ground; the per-variable head check below would be
      // redundant noise on top of that.
      if (rule.IsFact()) {
        for (const Term& t : rule.head.terms) {
          if (!t.is_constant()) {
            Emit(Severity::kError, "safety/nonground-fact", rule_index,
                 Anchor(t.pos(), rule.pos),
                 "fact " + rule.ToString() + " has non-constant term " +
                     t.ToString(),
                 "facts must list constants only; add a body to make this a "
                 "rule");
          }
        }
        continue;
      }

      const std::set<std::string> bound = BoundVariables(rule);
      auto unbound = [&bound](const Term& t) {
        return t.is_variable() && bound.count(t.var()) == 0;
      };

      for (const Term& t : rule.head.terms) {
        if ((t.is_variable() || t.is_aggregate()) &&
            bound.count(t.var()) == 0) {
          Emit(Severity::kError, "safety/unbound-head-variable", rule_index,
               Anchor(t.pos(), rule.pos),
               "head variable " + t.var() +
                   " is not bound by a positive body atom",
               "add a positive body atom (or an assignment from bound "
               "variables) binding " +
                   t.var());
        }
      }
      for (const Literal& lit : rule.body) {
        switch (lit.kind) {
          case Literal::Kind::kNegatedAtom:
            for (const Term& t : lit.atom.terms) {
              if (unbound(t)) {
                Emit(Severity::kError, "safety/unbound-negated-variable",
                     rule_index, Anchor(t.pos(), lit.pos),
                     "variable " + t.var() + " in negated atom not " +
                         lit.atom.predicate +
                         "(...) is not bound by a positive body atom",
                     "bind " + t.var() +
                         " positively before negating over it (negation is "
                         "safe only on bound variables)");
              }
            }
            break;
          case Literal::Kind::kComparison:
            for (const Term* t : {&lit.lhs, &lit.rhs}) {
              if (unbound(*t)) {
                Emit(Severity::kError, "safety/unbound-comparison-variable",
                     rule_index, Anchor(t->pos(), lit.pos),
                     "variable " + t->var() + " in comparison " +
                         lit.ToString() +
                         " is not bound by a positive body atom",
                     "bind " + t->var() + " in a positive body atom");
              }
            }
            break;
          case Literal::Kind::kAssignment:
            for (const Term* t : {&lit.lhs, &lit.rhs}) {
              if (t == &lit.rhs && lit.arith_op == ArithOp::kNone) continue;
              if (unbound(*t)) {
                Emit(Severity::kError, "safety/unbound-assignment-operand",
                     rule_index, Anchor(t->pos(), lit.pos),
                     "operand " + t->var() + " of assignment " +
                         lit.ToString() +
                         " is not bound by a positive body atom",
                     "bind " + t->var() + " before using it in arithmetic");
              }
            }
            break;
          case Literal::Kind::kAtom:
            break;
        }
      }
    }
  }

  // -------------------------------------------------------------------
  // (2) Stratification.
  // -------------------------------------------------------------------
  void CheckStratification() {
    std::vector<std::string> cycle;
    Result<Stratification> s = Stratify(program_, &cycle);
    if (s.ok()) return;

    // Anchor at the literal that closes the cycle: a negated atom (or
    // any body atom under an aggregate head) over a cycle predicate, in
    // a rule whose head is itself on the cycle.
    std::set<std::string> on_cycle(cycle.begin(), cycle.end());
    int rule_index = -1;
    SourcePos pos;
    for (size_t ri = 0; ri < program_.rules.size() && rule_index < 0; ++ri) {
      const Rule& rule = program_.rules[ri];
      if (on_cycle.count(rule.head.predicate) == 0) continue;
      const bool head_aggregates = rule.HasAggregates();
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        const bool strict =
            head_aggregates || lit.kind == Literal::Kind::kNegatedAtom;
        if (strict && on_cycle.count(lit.atom.predicate) > 0) {
          rule_index = static_cast<int>(ri);
          pos = Anchor(lit.pos, rule.pos);
          break;
        }
      }
    }
    Emit(Severity::kError, "stratification/negative-cycle", rule_index, pos,
         s.status().message(),
         "break the recursion or move the negated/aggregated predicate into "
         "a lower stratum");
  }

  // -------------------------------------------------------------------
  // (3) Wardedness.
  // -------------------------------------------------------------------

  /// Positive-body occurrences of each variable: (literal index, term
  /// index, atom) triples.
  struct BodyOccurrence {
    size_t literal_index;
    size_t term_index;
    const Atom* atom;
    SourcePos pos;
  };

  static std::map<std::string, std::vector<BodyOccurrence>> PositiveOccurrences(
      const Rule& rule) {
    std::map<std::string, std::vector<BodyOccurrence>> occ;
    for (size_t li = 0; li < rule.body.size(); ++li) {
      const Literal& lit = rule.body[li];
      if (lit.kind != Literal::Kind::kAtom) continue;
      for (size_t ti = 0; ti < lit.atom.terms.size(); ++ti) {
        const Term& t = lit.atom.terms[ti];
        if (!t.is_variable()) continue;
        occ[t.var()].push_back(
            {li, ti, &lit.atom, Anchor(t.pos(), lit.pos)});
      }
    }
    return occ;
  }

  void CheckWardedness() {
    // Affected positions: head positions that can carry "invented"
    // values. Vadalog-lite has no existentials, so the sources are
    // aggregates and arithmetic assignments; affectedness then
    // propagates through rules whose head variable is bound only at
    // affected positions. This mirrors the warded Datalog+- analysis
    // with invented values standing in for labelled nulls.
    std::map<std::string, std::set<size_t>> affected;
    auto is_affected = [&affected](const std::string& pred, size_t i) {
      auto it = affected.find(pred);
      return it != affected.end() && it->second.count(i) > 0;
    };

    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : program_.rules) {
        if (rule.IsFact()) continue;
        const auto occ = PositiveOccurrences(rule);
        std::set<std::string> assigned;
        for (const Literal& lit : rule.body) {
          if (lit.kind == Literal::Kind::kAssignment) {
            assigned.insert(lit.assign_var);
          }
        }
        for (size_t i = 0; i < rule.head.terms.size(); ++i) {
          const Term& t = rule.head.terms[i];
          bool makes_affected = false;
          if (t.is_aggregate()) {
            makes_affected = true;
          } else if (t.is_variable()) {
            auto it = occ.find(t.var());
            if (it == occ.end()) {
              // Not bound by any positive atom: value computed by an
              // assignment (or unsafe, which safety already reports).
              makes_affected = assigned.count(t.var()) > 0;
            } else {
              makes_affected = std::all_of(
                  it->second.begin(), it->second.end(),
                  [&](const BodyOccurrence& o) {
                    return is_affected(o.atom->predicate, o.term_index);
                  });
            }
          }
          if (makes_affected && !is_affected(rule.head.predicate, i)) {
            affected[rule.head.predicate].insert(i);
            changed = true;
          }
        }
      }
    }

    // Dangerous variables: frontier (head) variables whose every
    // positive-body occurrence sits at an affected position. Warded
    // programs confine each rule's dangerous variables to one atom (the
    // ward); dangerous joins across atoms break tractability.
    WardedClass program_class = WardedClass::kWarded;
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      if (rule.IsFact()) continue;
      const auto occ = PositiveOccurrences(rule);
      std::set<std::string> head_vars;
      for (const Term& t : rule.head.terms) {
        if (t.is_variable() || t.is_aggregate()) head_vars.insert(t.var());
      }

      std::vector<std::string> dangerous;
      std::set<size_t> ward_candidates;  // literal indices holding all
      bool first_dangerous = true;
      WardedClass rule_class = WardedClass::kWarded;
      for (const auto& [var, occurrences] : occ) {
        if (head_vars.count(var) == 0) continue;
        const bool all_affected = std::all_of(
            occurrences.begin(), occurrences.end(),
            [&](const BodyOccurrence& o) {
              return is_affected(o.atom->predicate, o.term_index);
            });
        if (!all_affected) continue;
        dangerous.push_back(var);

        std::set<size_t> literals;
        for (const BodyOccurrence& o : occurrences) {
          literals.insert(o.literal_index);
        }
        if (literals.size() > 1) {
          rule_class = WardedClass::kUnrestricted;
          Emit(Severity::kWarning, "wardedness/dangerous-join",
               static_cast<int>(ri), occurrences.front().pos,
               "dangerous variable " + var +
                   " (bound only at affected positions) joins across " +
                   std::to_string(literals.size()) + " body atoms",
               "restrict " + var +
                   " to a single ward atom, or bind it at a harmless "
                   "position");
        }
        if (first_dangerous) {
          ward_candidates = literals;
          first_dangerous = false;
        } else {
          std::set<size_t> intersection;
          std::set_intersection(
              ward_candidates.begin(), ward_candidates.end(),
              literals.begin(), literals.end(),
              std::inserter(intersection, intersection.begin()));
          ward_candidates = std::move(intersection);
        }
      }
      if (!dangerous.empty() && rule_class == WardedClass::kWarded &&
          ward_candidates.empty()) {
        rule_class = WardedClass::kShy;
        std::string vars;
        for (const std::string& v : dangerous) {
          if (!vars.empty()) vars += ", ";
          vars += v;
        }
        Emit(Severity::kInfo, "wardedness/no-single-ward",
             static_cast<int>(ri), rule.pos,
             "dangerous variables {" + vars +
                 "} do not share a single ward atom (shy, not warded)");
      }
      program_class = std::max(program_class, rule_class);
    }

    report_->warded_class = program_class;
    if (!affected.empty()) {
      size_t positions = 0;
      for (const auto& [pred, set] : affected) positions += set.size();
      Emit(Severity::kInfo, "wardedness/classification", -1, SourcePos{},
           std::string("program is ") + WardedClassName(program_class) +
               " (" + std::to_string(positions) +
               " affected predicate position(s))");
    }
  }

  // -------------------------------------------------------------------
  // (4) Catalog consistency.
  // -------------------------------------------------------------------
  void CheckCatalog() {
    if (catalog_ == nullptr) return;
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      CheckAtomAgainstCatalog(rule.head, static_cast<int>(ri),
                              /*is_head=*/true, rule.pos);
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom &&
            lit.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        CheckAtomAgainstCatalog(lit.atom, static_cast<int>(ri),
                                /*is_head=*/false, lit.pos);
      }
    }
    // One diagnostic per unknown predicate, anchored at its *first* use
    // (scan order above is declaration order, so the recorded occurrence
    // is the earliest one).
    for (const auto& [pred, use] : unknown_first_use_) {
      Emit(options_.unknown_predicates == UnknownPredicatePolicy::kError
               ? Severity::kError
               : Severity::kWarning,
           "catalog/unknown-predicate", use.rule_index, use.pos,
           "predicate " + pred +
               " is neither derived by the program nor a known relation",
           "create relation " + pred +
               " in the knowledge base, or add rules deriving it");
    }
  }

  void CheckAtomAgainstCatalog(const Atom& atom, int rule_index, bool is_head,
                               const SourcePos& fallback) {
    const PredicateInfo* info = catalog_->Find(atom.predicate);
    if (info == nullptr) {
      if (is_head || idb_.count(atom.predicate) > 0) return;  // derived
      if (options_.unknown_predicates == UnknownPredicatePolicy::kIgnore) {
        return;
      }
      if (unknown_seen_.insert(atom.predicate).second) {
        unknown_first_use_.emplace_back(
            atom.predicate, FirstUse{rule_index, Anchor(atom.pos, fallback)});
      }
      return;
    }
    if (atom.terms.size() != info->arity) {
      std::string declared;
      if (!info->attribute_names.empty()) {
        for (const std::string& a : info->attribute_names) {
          if (!declared.empty()) declared += ", ";
          declared += a;
        }
        declared = " (" + declared + ")";
      }
      Emit(Severity::kError, "catalog/arity-mismatch", rule_index,
           Anchor(atom.pos, fallback),
           "predicate " + atom.predicate + " used with arity " +
               std::to_string(atom.terms.size()) + " but relation " +
               atom.predicate + " has arity " + std::to_string(info->arity) +
               declared,
           "match the relation's attribute count");
      return;
    }
    if (info->attribute_types.empty()) return;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (!t.is_constant() || t.value().is_null()) continue;
      const AttributeType declared = info->attribute_types[i];
      if (IsCompatible(declared, t.value().type())) continue;
      std::string attr = i < info->attribute_names.size()
                             ? info->attribute_names[i]
                             : ("#" + std::to_string(i));
      Emit(Severity::kError, "catalog/type-mismatch", rule_index,
           Anchor(t.pos(), Anchor(atom.pos, fallback)),
           "constant " + t.ToString() + " (" +
               ValueTypeName(t.value().type()) +
               ") is incompatible with attribute " + attr + ":" +
               AttributeTypeName(declared) + " of " + atom.predicate,
           "use a " + std::string(AttributeTypeName(declared)) +
               " constant or a variable");
    }
  }

  // -------------------------------------------------------------------
  // (4b) Dataflow: abstract interpretation over the lattices of
  // datalog/analysis/dataflow. Open-world (unseeded predicates may hold
  // anything), with the catalog's declared attribute types narrowing
  // the seeds — so every finding is a proof about *all* databases the
  // catalog admits, and warning severity is deserved.
  // -------------------------------------------------------------------
  void CheckDataflow() {
    dataflow::EdbSeeds seeds;
    if (catalog_ != nullptr) {
      for (const auto& [name, info] : catalog_->entries()) {
        if (idb_.count(name) > 0) continue;  // derived: fixpoint covers it
        dataflow::PredicateSeed seed;
        seed.cardinality = dataflow::kCardUnbounded;
        for (AttributeType at : info.attribute_types) {
          dataflow::PosFacts pf = dataflow::PosFacts::Top();
          switch (at) {
            case AttributeType::kAny:
              break;
            case AttributeType::kBool:
              pf.types = dataflow::TypeSet::Of(ValueType::kBool)
                             .Union(dataflow::TypeSet::Of(ValueType::kNull));
              break;
            case AttributeType::kInt:
              pf.types = dataflow::TypeSet::Of(ValueType::kInt)
                             .Union(dataflow::TypeSet::Of(ValueType::kNull));
              break;
            case AttributeType::kDouble:
              pf.types = dataflow::TypeSet::Of(ValueType::kDouble)
                             .Union(dataflow::TypeSet::Of(ValueType::kNull));
              break;
            case AttributeType::kString:
              pf.types = dataflow::TypeSet::Of(ValueType::kString)
                             .Union(dataflow::TypeSet::Of(ValueType::kNull));
              break;
          }
          seed.positions.push_back(pf);
        }
        seeds.emplace(name, std::move(seed));
      }
    }
    dataflow::DataflowResult df =
        dataflow::AnalyzeDataflow(program_, seeds, dataflow::DataflowOptions{});
    for (size_t ri = 0; ri < df.rule_findings.size(); ++ri) {
      const SourcePos rule_pos =
          ri < program_.rules.size() ? program_.rules[ri].pos : SourcePos{};
      for (const dataflow::RuleFinding& f : df.rule_findings[ri]) {
        std::string hint;
        switch (f.kind) {
          case dataflow::FindingKind::kEmptyRule:
            hint = "the rule can never fire; delete it or fix the join";
            break;
          case dataflow::FindingKind::kTypeClash:
            hint =
                "no runtime value satisfies both positions; fix the "
                "variable or the data";
            break;
          case dataflow::FindingKind::kContradictoryComparisons:
            hint = "the combined comparisons admit no value; relax one";
            break;
          case dataflow::FindingKind::kUnsatisfiableGuard:
            hint = "this guard is always false; remove or correct it";
            break;
        }
        Emit(Severity::kWarning, dataflow::FindingCheckId(f.kind),
             static_cast<int>(ri), Anchor(f.pos, rule_pos), f.message,
             std::move(hint));
      }
    }
  }

  // -------------------------------------------------------------------
  // (5) Lint.
  // -------------------------------------------------------------------
  void CheckLint() {
    CheckSingletonVariables();
    CheckDuplicateRules();
    CheckShadowedConstants();
    if (options_.goal_predicate.empty()) CheckUnusedPredicates();
  }

  void CheckSingletonVariables() {
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      // var -> (occurrence count, first anchored position)
      std::map<std::string, std::pair<int, SourcePos>> counts;
      auto see = [&counts](const std::string& var, const SourcePos& pos) {
        auto [it, inserted] = counts.emplace(var, std::make_pair(0, pos));
        ++it->second.first;
        if (!it->second.second.known()) it->second.second = pos;
      };
      for (const Term& t : rule.head.terms) {
        if (t.is_variable() || t.is_aggregate()) see(t.var(), t.pos());
      }
      for (const Literal& lit : rule.body) {
        switch (lit.kind) {
          case Literal::Kind::kAtom:
          case Literal::Kind::kNegatedAtom:
            for (const Term& t : lit.atom.terms) {
              if (t.is_variable()) see(t.var(), Anchor(t.pos(), lit.pos));
            }
            break;
          case Literal::Kind::kComparison:
            for (const Term* t : {&lit.lhs, &lit.rhs}) {
              if (t->is_variable()) see(t->var(), Anchor(t->pos(), lit.pos));
            }
            break;
          case Literal::Kind::kAssignment:
            see(lit.assign_var, lit.pos);
            for (const Term* t : {&lit.lhs, &lit.rhs}) {
              if (t->is_variable()) see(t->var(), Anchor(t->pos(), lit.pos));
            }
            break;
        }
      }
      for (const auto& [var, count_pos] : counts) {
        if (count_pos.first != 1 || var[0] == '_') continue;
        Emit(Severity::kWarning, "lint/singleton-variable",
             static_cast<int>(ri), count_pos.second,
             "variable " + var + " occurs only once in the rule",
             "rename it to _" + var + " to mark it intentionally unused");
      }
    }
  }

  void CheckDuplicateRules() {
    std::map<std::string, size_t> first_seen;
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      auto [it, inserted] = first_seen.emplace(rule.ToString(), ri);
      if (inserted) continue;
      Emit(Severity::kWarning, "lint/duplicate-rule", static_cast<int>(ri),
           rule.pos,
           "rule duplicates rule " + std::to_string(it->second) + " (" +
               rule.ToString() + ")",
           "delete one of the copies");
    }
  }

  void CheckShadowedConstants() {
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      auto check_term = [&](const Term& t, const SourcePos& fallback) {
        if (!t.is_constant() || t.value().type() != ValueType::kString) {
          return;
        }
        const std::string& s = t.value().string_value();
        if (idb_.count(s) == 0) return;
        Emit(Severity::kWarning, "lint/shadowed-constant",
             static_cast<int>(ri), Anchor(t.pos(), fallback),
             "constant \"" + s +
                 "\" has the same name as a predicate defined by this "
                 "program; bare identifiers denote string constants, not "
                 "nested atoms",
             "rename the constant or quote it intentionally");
      };
      for (const Term& t : rule.head.terms) check_term(t, rule.pos);
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          for (const Term& t : lit.atom.terms) check_term(t, lit.pos);
        } else {
          check_term(lit.lhs, lit.pos);
          check_term(lit.rhs, lit.pos);
        }
      }
    }
  }

  void CheckUnusedPredicates() {
    std::set<std::string> referenced;
    for (const Rule& rule : program_.rules) {
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          referenced.insert(lit.atom.predicate);
        }
      }
    }
    if (idb_.size() < 2) return;  // a single output is obviously the output
    std::set<std::string> reported;
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const std::string& head = program_.rules[ri].head.predicate;
      if (referenced.count(head) > 0 || !reported.insert(head).second) {
        continue;
      }
      Emit(Severity::kInfo, "lint/unused-predicate", static_cast<int>(ri),
           program_.rules[ri].pos,
           "predicate " + head +
               " is derived but never used by another rule (possibly an "
               "output)");
    }
  }

  // -------------------------------------------------------------------
  // Goal reachability (registration-time contract for dependencies).
  // -------------------------------------------------------------------
  void CheckGoal() {
    const std::string& goal = options_.goal_predicate;
    if (idb_.count(goal) == 0) {
      Emit(Severity::kError, "goal/undefined", -1, SourcePos{},
           "program never defines goal predicate '" + goal + "'",
           "add at least one rule (or fact) with head " + goal + "(...)");
      return;
    }
    if (!options_.check_lint) return;
    // Predicates that can contribute to the goal: body predicates of
    // reachable heads, transitively.
    std::set<std::string> reachable{goal};
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Rule& rule : program_.rules) {
        if (reachable.count(rule.head.predicate) == 0) continue;
        for (const Literal& lit : rule.body) {
          if (lit.kind != Literal::Kind::kAtom &&
              lit.kind != Literal::Kind::kNegatedAtom) {
            continue;
          }
          if (reachable.insert(lit.atom.predicate).second) changed = true;
        }
      }
    }
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      const Rule& rule = program_.rules[ri];
      if (reachable.count(rule.head.predicate) > 0) continue;
      Emit(Severity::kWarning, "lint/unreachable-rule", static_cast<int>(ri),
           rule.pos,
           "rule derives " + rule.head.predicate +
               ", which cannot contribute to goal '" + goal + "'",
           "remove the rule or connect it to the goal");
    }
  }

  const AnalyzerOptions& options_;
  const Program& program_;
  const PredicateCatalog* catalog_;
  AnalysisReport* report_;
  std::set<std::string> idb_;
  /// Unknown predicates in first-use order; one diagnostic each,
  /// anchored at the earliest occurrence.
  struct FirstUse {
    int rule_index;
    SourcePos pos;
  };
  std::set<std::string> unknown_seen_;
  std::vector<std::pair<std::string, FirstUse>> unknown_first_use_;
};

}  // namespace

ProgramAnalyzer::ProgramAnalyzer(AnalyzerOptions options)
    : options_(std::move(options)) {}

AnalysisReport ProgramAnalyzer::Analyze(const Program& program,
                                        const PredicateCatalog* catalog) const {
  AnalysisReport report;
  Checker checker(options_, program, catalog, &report);
  checker.Run();
  return report;
}

AnalysisReport ProgramAnalyzer::AnalyzeSource(
    std::string_view source, const PredicateCatalog* catalog) const {
  Result<Program> program = Parser::ParseUnvalidated(source);
  if (!program.ok()) {
    AnalysisReport report;
    Diagnostic d;
    d.severity = Severity::kError;
    d.check_id = "parse/error";
    d.message = program.status().message();
    report.diagnostics.push_back(std::move(d));
    return report;
  }
  return Analyze(program.value(), catalog);
}

}  // namespace vada::datalog::analysis
