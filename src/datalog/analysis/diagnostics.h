#ifndef VADA_DATALOG_ANALYSIS_DIAGNOSTICS_H_
#define VADA_DATALOG_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace vada::datalog::analysis {

/// Finding severity. Errors make a program unfit for evaluation (unsafe,
/// non-stratifiable, arity-inconsistent); warnings flag likely mistakes
/// that still evaluate; infos are purely informational (classification,
/// possibly-unused outputs).
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

/// "info", "warning" or "error".
const char* SeverityName(Severity severity);

/// Wardedness classification of a program (Vadalog tractability ladder,
/// Bellomarini et al. VLDB'18 / Baldazzi et al. 2023). In this dialect
/// "invented" values originate from aggregates and arithmetic
/// assignments rather than existential quantifiers; see DESIGN.md for
/// the exact approximation.
///  - kWarded: every rule confines its dangerous variables to one atom.
///  - kShy: dangerous variables never join, but some rule lacks a single
///    ward atom containing all of them.
///  - kUnrestricted: some dangerous variable joins across body atoms.
enum class WardedClass { kWarded = 0, kShy = 1, kUnrestricted = 2 };

/// "warded", "shy" or "unrestricted".
const char* WardedClassName(WardedClass c);

/// One static-analysis finding, anchored to the source token that
/// triggered it (pos.known() is false for ASTs built programmatically).
struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// Stable machine-readable id, "<family>/<check>" — e.g.
  /// "safety/unbound-head-variable", "lint/singleton-variable".
  std::string check_id;
  /// Index into Program::rules, or -1 for whole-program findings.
  int rule_index = -1;
  SourcePos pos;
  std::string message;
  /// Suggested remedy, empty when none applies.
  std::string fix_hint;

  /// "line L, col C: error [safety/...]: message (fix: hint)".
  std::string ToString() const;
};

/// Everything one ProgramAnalyzer::Analyze pass found.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  WardedClass warded_class = WardedClass::kWarded;

  size_t CountAtSeverity(Severity severity) const;
  size_t error_count() const { return CountAtSeverity(Severity::kError); }
  size_t warning_count() const { return CountAtSeverity(Severity::kWarning); }
  bool ok() const { return error_count() == 0; }

  /// All diagnostics, one per line, errors first within source order.
  std::string ToString() const;

  /// OK when ok(); otherwise kInvalidArgument naming `context` and the
  /// first error (plus the total error count). Registration-time
  /// validation returns this to callers.
  Status ToStatus(const std::string& context) const;
};

}  // namespace vada::datalog::analysis

#endif  // VADA_DATALOG_ANALYSIS_DIAGNOSTICS_H_
