#ifndef VADA_DATALOG_ANALYSIS_PREDICATE_CATALOG_H_
#define VADA_DATALOG_ANALYSIS_PREDICATE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "kb/schema.h"

namespace vada::datalog::analysis {

/// What the analyzer knows about one extensional predicate: its declared
/// arity and (optionally) per-position attribute names/types, taken from
/// the KB relation schema the predicate resolves to at evaluation time.
struct PredicateInfo {
  size_t arity = 0;
  /// Attribute names, empty or arity-sized (used in messages only).
  std::vector<std::string> attribute_names;
  /// Declared types, empty or arity-sized; kAny entries are unchecked.
  std::vector<AttributeType> attribute_types;
};

/// The analyzer-facing view of the knowledge-base catalog: predicate
/// name -> declared shape. Decoupled from KnowledgeBase so tests (and
/// the vada_lint CLI, which has no KB) can declare predicates directly.
class PredicateCatalog {
 public:
  void Declare(const std::string& predicate, PredicateInfo info);
  /// Declares `schema.relation_name()` from a relation schema.
  void DeclareSchema(const Schema& schema);

  /// nullptr when unknown.
  const PredicateInfo* Find(const std::string& predicate) const;
  bool empty() const { return predicates_.empty(); }
  size_t size() const { return predicates_.size(); }
  /// All declared predicates, name-ordered — the dataflow checks seed
  /// their abstract domains from the declared attribute types.
  const std::map<std::string, PredicateInfo>& entries() const {
    return predicates_;
  }

  /// Every relation currently in `kb`, plus the sys_* control relations
  /// the orchestrator materialises before each dependency check (so
  /// input-dependency programs validate even on a fresh KB).
  static PredicateCatalog FromKnowledgeBase(const KnowledgeBase& kb);

  /// Only the sys_* control relations (sys_relation_role,
  /// sys_relation_nonempty, sys_relation_attribute).
  static PredicateCatalog SystemRelations();

 private:
  std::map<std::string, PredicateInfo> predicates_;
};

}  // namespace vada::datalog::analysis

#endif  // VADA_DATALOG_ANALYSIS_PREDICATE_CATALOG_H_
