#ifndef VADA_DATALOG_ANALYSIS_ANALYZER_H_
#define VADA_DATALOG_ANALYSIS_ANALYZER_H_

#include <string>
#include <string_view>

#include "datalog/analysis/diagnostics.h"
#include "datalog/analysis/predicate_catalog.h"
#include "datalog/ast.h"

namespace vada::datalog::analysis {

/// How to treat body predicates that are neither derived by the program
/// nor declared in the catalog. Open-world contexts (linting a file with
/// no knowledge base, or registration time when EDB relations appear
/// later) want kIgnore or kWarn; a closed catalog can afford kError.
enum class UnknownPredicatePolicy { kIgnore = 0, kWarn, kError };

/// Which checks ProgramAnalyzer runs and how strict they are. All check
/// families default on; disable individually for targeted tooling.
struct AnalyzerOptions {
  bool check_safety = true;          ///< safety/* (range restriction)
  bool check_stratification = true;  ///< stratification/negative-cycle
  bool check_wardedness = true;      ///< wardedness/* + classification
  bool check_catalog = true;         ///< catalog/* (arity, types, unknown)
  bool check_lint = true;            ///< lint/* (style & dead code)
  /// dataflow/* — abstract interpretation over type/constant/interval
  /// lattices (datalog/analysis/dataflow): position type clashes,
  /// provably-empty rules, contradictory comparison chains and
  /// unsatisfiable guards. Open-world: predicates outside the catalog
  /// are assumed to possibly hold anything, so every finding is a proof.
  bool check_dataflow = true;

  /// When non-empty the program is expected to define this predicate
  /// (goal/undefined error otherwise) and rules that cannot contribute
  /// to it are flagged lint/unreachable-rule. The orchestrator passes
  /// "ready" for transducer input dependencies.
  std::string goal_predicate;

  /// See UnknownPredicatePolicy; only consulted when a catalog is given.
  UnknownPredicatePolicy unknown_predicates = UnknownPredicatePolicy::kWarn;
};

/// Static analysis over parsed Vadalog-lite programs: a pipeline of five
/// check families (safety, stratification, wardedness, catalog
/// consistency, lint), each emitting structured Diagnostics anchored to
/// source positions. Pure function of its inputs; never mutates the
/// program or the catalog and never fails — malformed programs come back
/// as reports full of errors, not as crashes.
class ProgramAnalyzer {
 public:
  explicit ProgramAnalyzer(AnalyzerOptions options = AnalyzerOptions());

  /// Analyzes an already-parsed program. `catalog` may be null (catalog
  /// checks are skipped entirely).
  AnalysisReport Analyze(const Program& program,
                         const PredicateCatalog* catalog = nullptr) const;

  /// Parses `source` with Parser::ParseUnvalidated, then Analyze. Lex or
  /// parse failures yield a single parse/error diagnostic (safety
  /// violations, which Parser::Parse would reject, are reported as
  /// regular safety/* diagnostics instead).
  AnalysisReport AnalyzeSource(std::string_view source,
                               const PredicateCatalog* catalog = nullptr) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace vada::datalog::analysis

#endif  // VADA_DATALOG_ANALYSIS_ANALYZER_H_
