#include "datalog/analysis/predicate_catalog.h"

namespace vada::datalog::analysis {

void PredicateCatalog::Declare(const std::string& predicate,
                               PredicateInfo info) {
  predicates_[predicate] = std::move(info);
}

void PredicateCatalog::DeclareSchema(const Schema& schema) {
  PredicateInfo info;
  info.arity = schema.arity();
  bool any_typed = false;
  for (const Attribute& a : schema.attributes()) {
    info.attribute_names.push_back(a.name);
    info.attribute_types.push_back(a.type);
    if (a.type != AttributeType::kAny) any_typed = true;
  }
  if (!any_typed) info.attribute_types.clear();
  Declare(schema.relation_name(), std::move(info));
}

const PredicateInfo* PredicateCatalog::Find(
    const std::string& predicate) const {
  auto it = predicates_.find(predicate);
  return it == predicates_.end() ? nullptr : &it->second;
}

PredicateCatalog PredicateCatalog::SystemRelations() {
  // The control relations only ever hold relation/attribute/role names,
  // so declare them string-typed: `sys_relation_nonempty(42)` is a bug
  // worth catching even without a knowledge base at hand.
  const auto str = [](std::string name) {
    return Attribute{std::move(name), AttributeType::kString};
  };
  PredicateCatalog catalog;
  catalog.DeclareSchema(
      Schema("sys_relation_role", {str("relation"), str("role")}));
  catalog.DeclareSchema(Schema("sys_relation_nonempty", {str("relation")}));
  catalog.DeclareSchema(
      Schema("sys_relation_attribute", {str("relation"), str("attribute")}));
  return catalog;
}

PredicateCatalog PredicateCatalog::FromKnowledgeBase(const KnowledgeBase& kb) {
  PredicateCatalog catalog;
  for (const std::string& name : kb.RelationNames()) {
    const Relation* rel = kb.FindRelation(name);
    if (rel != nullptr) catalog.DeclareSchema(rel->schema());
  }
  // Declared last so the typed declarations win over the untyped sys_*
  // relations the orchestrator may already have materialised in `kb`.
  PredicateCatalog system = SystemRelations();
  for (const auto& [name, info] : system.predicates_) {
    catalog.Declare(name, info);
  }
  return catalog;
}

}  // namespace vada::datalog::analysis
