#include "datalog/analysis/dataflow/dataflow.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <set>

#include "datalog/database.h"
#include "datalog/evaluator.h"

namespace vada::datalog::dataflow {

namespace {

/// Abstract counterpart of the engine's ApplyArith: result types follow
/// the int-op-int-stays-int rule, intervals use interval arithmetic.
/// Pre-condition: both operands can be numeric and are non-empty.
PosFacts AbstractArith(ArithOp op, const PosFacts& a, const PosFacts& b) {
  PosFacts out;
  const bool a_int_only = a.types.Intersect(TypeSet::Numeric()) ==
                          TypeSet::Of(ValueType::kInt);
  const bool b_int_only = b.types.Intersect(TypeSet::Numeric()) ==
                          TypeSet::Of(ValueType::kInt);
  if (op == ArithOp::kDiv) {
    out.types = TypeSet::Of(ValueType::kDouble);
  } else if (a_int_only && b_int_only) {
    out.types = TypeSet::Of(ValueType::kInt);
  } else {
    out.types = TypeSet::Numeric();
  }
  out.consts = ConstSet::Top();
  const Interval& ra = a.range;
  const Interval& rb = b.range;
  if (ra.empty() || rb.empty()) {
    out.range = Interval::Empty();
    return out;
  }
  switch (op) {
    case ArithOp::kAdd:
      out.range = Interval{ra.lo + rb.lo, ra.hi + rb.hi};
      break;
    case ArithOp::kSub:
      out.range = Interval{ra.lo - rb.hi, ra.hi - rb.lo};
      break;
    case ArithOp::kMul:
      if (ra.is_top() || rb.is_top() || std::isinf(ra.lo) ||
          std::isinf(ra.hi) || std::isinf(rb.lo) || std::isinf(rb.hi)) {
        out.range = Interval::Top();  // avoid inf*0 NaN corners
      } else {
        double p1 = ra.lo * rb.lo, p2 = ra.lo * rb.hi;
        double p3 = ra.hi * rb.lo, p4 = ra.hi * rb.hi;
        out.range = Interval{std::min(std::min(p1, p2), std::min(p3, p4)),
                             std::max(std::max(p1, p2), std::max(p3, p4))};
      }
      break;
    case ArithOp::kDiv:
    case ArithOp::kNone:
      out.range = Interval::Top();
      break;
  }
  return out;
}

/// Abstract aggregate result, mirroring the evaluator's finalization:
/// count -> Int >= 0; min/max -> one of the aggregated values; sum ->
/// Int(0) for non-numeric groups, else int/double per operands; avg ->
/// Double (Null for non-numeric groups).
PosFacts AbstractAggregate(AggFunc func, const PosFacts& operand) {
  PosFacts out;
  switch (func) {
    case AggFunc::kCount:
      out.types = TypeSet::Of(ValueType::kInt);
      out.consts = ConstSet::Top();
      out.range = Interval{0, std::numeric_limits<double>::infinity()};
      return out;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return operand;  // min/max is one of the aggregated values
    case AggFunc::kSum:
      out.types = TypeSet::Of(ValueType::kInt);
      if (operand.types.Contains(ValueType::kDouble)) {
        out.types = out.types.Union(TypeSet::Of(ValueType::kDouble));
      }
      out.consts = ConstSet::Top();
      out.range = Interval::Top();
      return out;
    case AggFunc::kAvg:
      out.types = TypeSet::Of(ValueType::kDouble);
      if (!operand.types.NumericOnly()) {
        out.types = out.types.Union(TypeSet::Of(ValueType::kNull));
      }
      out.consts = ConstSet::Top();
      out.range = operand.range;  // avg lies within [min, max]
      return out;
  }
  return PosFacts::Top();
}

bool CompareSatisfiable(CompareOp op, const Value& a, const Value& b) {
  std::optional<int> cmp = CompareValues(a, b);
  switch (op) {
    case CompareOp::kEq:
      return cmp.has_value() && *cmp == 0;
    case CompareOp::kNe:
      return !cmp.has_value() || *cmp != 0;
    case CompareOp::kLt:
      return cmp.has_value() && *cmp < 0;
    case CompareOp::kLe:
      return cmp.has_value() && *cmp <= 0;
    case CompareOp::kGt:
      return cmp.has_value() && *cmp > 0;
    case CompareOp::kGe:
      return cmp.has_value() && *cmp >= 0;
  }
  return true;
}

SourcePos AnchorPos(const SourcePos& preferred, const SourcePos& fallback) {
  return preferred.known() ? preferred : fallback;
}

class Analysis {
 public:
  Analysis(const Program& program, const EdbSeeds& seeds,
           const DataflowOptions& options)
      : program_(program), seeds_(seeds), options_(options) {}

  DataflowResult Run() {
    Initialize();
    // Kleene iteration from ⊥. Types and const sets are finite lattices
    // and intervals widen after `widen_after` rounds, so this converges;
    // the round cap is a defensive valve, with a forced-⊤ fallback that
    // keeps the result sound even if it ever fires.
    const size_t max_rounds = 16 + 4 * program_.rules.size();
    bool converged = false;
    for (size_t round = 0; round < max_rounds; ++round) {
      changed_ = false;
      widen_ = round >= options_.widen_after;
      for (const Rule& rule : program_.rules) {
        EvalRule(rule, /*findings=*/nullptr);
      }
      if (!changed_) {
        converged = true;
        break;
      }
    }
    if (!converged) ForceTop();

    // Findings pass against the final (stable) state.
    result_.rule_findings.resize(program_.rules.size());
    rule_fires_.resize(program_.rules.size(), false);
    widen_ = false;
    for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
      contribute_ = false;
      rule_fires_[ri] =
          EvalRule(program_.rules[ri], &result_.rule_findings[ri]);
      contribute_ = true;
    }
    ComputeCardinalities();
    return std::move(result_);
  }

 private:
  PredicateFacts& StateOf(const std::string& pred) {
    return result_.predicates[pred];
  }

  void SeePredicate(const std::string& pred, size_t arity, bool is_head) {
    PredicateFacts& pf = result_.predicates[pred];
    if (pf.positions.size() < arity) pf.positions.resize(arity);
    if (is_head) idb_.insert(pred);
  }

  void Initialize() {
    for (const Rule& rule : program_.rules) {
      SeePredicate(rule.head.predicate, rule.head.terms.size(),
                   /*is_head=*/true);
      for (const Literal& lit : rule.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          SeePredicate(lit.atom.predicate, lit.atom.terms.size(),
                       /*is_head=*/false);
        }
      }
    }
    for (auto& [pred, pf] : result_.predicates) {
      auto seed = seeds_.find(pred);
      if (seed != seeds_.end()) {
        seeded_card_[pred] = seed->second.cardinality;
        if (seed->second.cardinality > 0) {
          pf.possibly_nonempty = true;
          for (size_t i = 0; i < pf.positions.size(); ++i) {
            pf.positions[i] = i < seed->second.positions.size()
                                  ? seed->second.positions[i]
                                  : PosFacts::Top();
          }
        }
      } else if (idb_.count(pred) == 0 && options_.assume_unknown_nonempty) {
        // Open world: an unseeded, non-derived predicate may hold
        // anything.
        seeded_card_[pred] = kCardUnbounded;
        pf.possibly_nonempty = true;
        for (PosFacts& p : pf.positions) p = PosFacts::Top();
      }
    }
  }

  void ForceTop() {
    for (auto& [pred, pf] : result_.predicates) {
      if (idb_.count(pred) == 0) continue;
      pf.possibly_nonempty = true;
      for (PosFacts& p : pf.positions) p = PosFacts::Top();
    }
  }

  void Fail(std::vector<RuleFinding>* findings, FindingKind kind,
            SourcePos pos, std::string message) {
    if (findings == nullptr) return;
    findings->push_back(RuleFinding{kind, pos, std::move(message)});
  }

  /// Abstractly evaluates one rule against the current state. Returns
  /// whether the rule can possibly fire; when it can and contribute_ is
  /// set, joins the head abstraction into the head predicate's state.
  /// When `findings` is non-null, the first emptiness proof found is
  /// recorded (one finding per rule keeps lint output readable).
  bool EvalRule(const Rule& rule, std::vector<RuleFinding>* findings) {
    std::map<std::string, PosFacts> vars;

    // 1. Positive atoms bind variables to the meet of their positions
    // (atom matching is exact: Int(3) never matches Double(3.0)).
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      const PredicateFacts& pf = StateOf(lit.atom.predicate);
      if (!pf.possibly_nonempty) {
        Fail(findings, FindingKind::kEmptyRule,
             AnchorPos(lit.pos, rule.pos),
             "body atom " + lit.atom.predicate +
                 "(...) reads a provably-empty predicate");
        return false;
      }
      for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
        const Term& t = lit.atom.terms[i];
        PosFacts posf = i < pf.positions.size() ? pf.positions[i]
                                                : PosFacts::Top();
        if (t.is_constant()) {
          if (posf.types.Intersect(TypeSet::Of(t.value().type())).empty()) {
            Fail(findings, FindingKind::kTypeClash,
                 AnchorPos(t.pos(), lit.pos),
                 "constant " + t.value().ToLiteral() + " can never match " +
                     lit.atom.predicate + " position " + std::to_string(i) +
                     " (inferred types " + posf.types.ToString() + ")");
            return false;
          }
          if (posf.Meet(PosFacts::FromValue(t.value())).empty()) {
            Fail(findings, FindingKind::kEmptyRule,
                 AnchorPos(t.pos(), lit.pos),
                 lit.atom.predicate + " never holds " +
                     t.value().ToLiteral() + " at position " +
                     std::to_string(i) + " (inferred " + posf.ToString() +
                     ")");
            return false;
          }
          continue;
        }
        if (!t.is_variable()) continue;
        auto [it, inserted] = vars.emplace(t.var(), posf);
        if (inserted) continue;
        PosFacts met = it->second.Meet(posf);
        if (met.empty()) {
          if (it->second.types.Intersect(posf.types).empty()) {
            Fail(findings, FindingKind::kTypeClash,
                 AnchorPos(t.pos(), lit.pos),
                 "variable " + t.var() +
                     " joins positions of incompatible types (" +
                     it->second.types.ToString() + " vs " +
                     posf.types.ToString() + ")");
          } else {
            Fail(findings, FindingKind::kEmptyRule,
                 AnchorPos(t.pos(), lit.pos),
                 "join over " + t.var() +
                     " has no common values (" + it->second.ToString() +
                     " vs " + posf.ToString() + ")");
          }
          return false;
        }
        it->second = met;
      }
    }

    auto abstract_of = [&vars](const Term& t) -> std::optional<PosFacts> {
      if (t.is_constant()) return PosFacts::FromValue(t.value());
      auto it = vars.find(t.var());
      if (it == vars.end()) return std::nullopt;
      return it->second;
    };

    // 2. Assignments, iterated so chains (B = A + 1, C = B * 2) resolve
    // regardless of declared order.
    std::set<size_t> done;
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t li = 0; li < rule.body.size(); ++li) {
        const Literal& lit = rule.body[li];
        if (lit.kind != Literal::Kind::kAssignment || done.count(li) > 0) {
          continue;
        }
        std::optional<PosFacts> a = abstract_of(lit.lhs);
        if (!a.has_value()) continue;
        PosFacts computed;
        if (lit.arith_op == ArithOp::kNone) {
          computed = *a;
        } else {
          std::optional<PosFacts> b = abstract_of(lit.rhs);
          if (!b.has_value()) continue;
          if (!a->types.ContainsNumeric() || !b->types.ContainsNumeric()) {
            Fail(findings, FindingKind::kTypeClash, lit.pos,
                 "arithmetic in " + lit.ToString() +
                     " applies to a provably non-numeric operand");
            return false;
          }
          computed = AbstractArith(lit.arith_op, *a, *b);
        }
        done.insert(li);
        progress = true;
        auto it = vars.find(lit.assign_var);
        if (it == vars.end()) {
          vars.emplace(lit.assign_var, std::move(computed));
          continue;
        }
        // Assignment over a bound variable is an equality check, and
        // the engine checks it with coercion (CompareValues).
        PosFacts met = it->second.MeetCoerced(computed);
        if (met.empty()) {
          Fail(findings, FindingKind::kContradictoryComparisons, lit.pos,
               "check " + lit.ToString() + " can never hold (" +
                   it->second.ToString() + " vs " + computed.ToString() +
                   ")");
          return false;
        }
        it->second = met;
      }
    }

    // 3. Comparisons refine and may prove the body unsatisfiable.
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kComparison) continue;
      if (lit.lhs.is_constant() && lit.rhs.is_constant()) {
        if (!CompareSatisfiable(lit.compare_op, lit.lhs.value(),
                                lit.rhs.value())) {
          Fail(findings, FindingKind::kUnsatisfiableGuard, lit.pos,
               "guard " + lit.ToString() + " is always false");
          return false;
        }
        continue;
      }
      PosFacts la = abstract_of(lit.lhs).value_or(PosFacts::Top());
      PosFacts ra = abstract_of(lit.rhs).value_or(PosFacts::Top());
      // CompareValues succeeds only for numeric-numeric pairs or values
      // of one shared type; kNe is the exception — incomparable values
      // count as "not equal" and satisfy it.
      if (lit.compare_op != CompareOp::kNe) {
        const bool comparable =
            (la.types.ContainsNumeric() && ra.types.ContainsNumeric()) ||
            !la.types.Intersect(ra.types).empty();
        if (!comparable) {
          Fail(findings, FindingKind::kUnsatisfiableGuard, lit.pos,
               "comparison " + lit.ToString() +
                   " can never succeed: operand types " +
                   la.types.ToString() + " and " + ra.types.ToString() +
                   " are never comparable");
          return false;
        }
      }
      // Exhaustive check over small constant sets.
      if (!la.consts.is_top() && !ra.consts.is_top()) {
        bool any = false;
        for (const Value& va : la.consts.values()) {
          for (const Value& vb : ra.consts.values()) {
            if (CompareSatisfiable(lit.compare_op, va, vb)) {
              any = true;
              break;
            }
          }
          if (any) break;
        }
        if (!any) {
          Fail(findings, FindingKind::kContradictoryComparisons, lit.pos,
               "comparison " + lit.ToString() +
                   " can never hold for the inferred values (" +
                   la.consts.ToString() + " vs " + ra.consts.ToString() +
                   ")");
          return false;
        }
      }
      // Refinement of variable operands.
      PosFacts new_la = la;
      PosFacts new_ra = ra;
      switch (lit.compare_op) {
        case CompareOp::kEq: {
          PosFacts met = la.MeetCoerced(ra);
          if (met.empty()) {
            Fail(findings, FindingKind::kContradictoryComparisons, lit.pos,
                 "equality " + lit.ToString() + " can never hold (" +
                     la.ToString() + " vs " + ra.ToString() + ")");
            return false;
          }
          new_la = met;
          new_ra = met;
          break;
        }
        case CompareOp::kNe:
          break;  // removes at most one point; not worth tracking
        case CompareOp::kLt:
        case CompareOp::kLe:
          new_la.range = la.range.Intersect(
              Interval{-std::numeric_limits<double>::infinity(),
                       ra.range.hi});
          new_ra.range = ra.range.Intersect(
              Interval{la.range.lo,
                       std::numeric_limits<double>::infinity()});
          break;
        case CompareOp::kGt:
        case CompareOp::kGe:
          new_la.range = la.range.Intersect(
              Interval{ra.range.lo,
                       std::numeric_limits<double>::infinity()});
          new_ra.range = ra.range.Intersect(
              Interval{-std::numeric_limits<double>::infinity(),
                       la.range.hi});
          break;
      }
      bool contradiction = false;
      auto write_back = [&](const Term& term, const PosFacts& refined) {
        if (contradiction || !term.is_variable()) return;
        auto it = vars.find(term.var());
        if (it == vars.end()) return;
        if (refined.empty()) {
          Fail(findings, FindingKind::kContradictoryComparisons, lit.pos,
               "comparisons leave " + term.var() +
                   " with no possible value (" + it->second.ToString() +
                   " refined to ⊥ by " + lit.ToString() + ")");
          contradiction = true;
          return;
        }
        it->second = refined;
      };
      write_back(lit.lhs, new_la);
      write_back(lit.rhs, new_ra);
      if (contradiction) return false;
    }

    // Negations never refine (a sound no-op: ignoring a filter only
    // widens the abstraction).

    // 4. Head contribution.
    if (!contribute_) return true;
    PredicateFacts& head = StateOf(rule.head.predicate);
    if (!head.possibly_nonempty) {
      head.possibly_nonempty = true;
      changed_ = true;
    }
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      const Term& t = rule.head.terms[i];
      PosFacts contrib;
      if (t.is_constant()) {
        contrib = PosFacts::FromValue(t.value());
      } else if (t.is_aggregate()) {
        auto it = vars.find(t.var());
        contrib = AbstractAggregate(
            t.agg_func(), it != vars.end() ? it->second : PosFacts::Top());
      } else {
        auto it = vars.find(t.var());
        contrib = it != vars.end() ? it->second : PosFacts::Top();
      }
      if (i >= head.positions.size()) continue;  // arity clash; lint's job
      PosFacts& slot = head.positions[i];
      PosFacts next =
          widen_ ? slot.JoinWidened(contrib) : slot.Join(contrib);
      if (next != slot) {
        slot = next;
        changed_ = true;
      }
    }
    return true;
  }

  // -------------------------------------------------------------------
  // Cardinality bounds (post-fixpoint).
  // -------------------------------------------------------------------

  /// ∏ over positions of the const-set size — the number of distinct
  /// facts a predicate can hold when every position ranges over a known
  /// finite domain. Unbounded as soon as one position is ⊤.
  size_t DomainBound(const PredicateFacts& pf) const {
    if (!pf.possibly_nonempty) return 0;
    size_t bound = 1;
    for (const PosFacts& p : pf.positions) {
      if (p.consts.is_top()) return kCardUnbounded;
      bound = CardMul(bound, std::max<size_t>(p.consts.size(), 1));
    }
    return bound;
  }

  void ComputeCardinalities() {
    // Positive dependency closure; a predicate in a positive cycle is
    // recursive and falls back to its domain bound.
    std::map<std::string, std::set<std::string>> reach;
    for (const Rule& rule : program_.rules) {
      for (const Literal& lit : rule.body) {
        if (lit.kind != Literal::Kind::kAtom) continue;
        reach[rule.head.predicate].insert(lit.atom.predicate);
      }
    }
    bool grew = true;
    while (grew) {
      grew = false;
      for (auto& [head, deps] : reach) {
        std::set<std::string> add;
        for (const std::string& d : deps) {
          auto it = reach.find(d);
          if (it == reach.end()) continue;
          for (const std::string& dd : it->second) {
            if (deps.count(dd) == 0) add.insert(dd);
          }
        }
        if (!add.empty()) {
          deps.insert(add.begin(), add.end());
          grew = true;
        }
      }
    }
    auto recursive = [&reach](const std::string& pred) {
      auto it = reach.find(pred);
      return it != reach.end() && it->second.count(pred) > 0;
    };

    std::map<std::string, size_t> memo;
    // DFS over the (acyclic, once recursion is cut) dependency DAG.
    std::function<size_t(const std::string&)> card =
        [&](const std::string& pred) -> size_t {
      auto it = memo.find(pred);
      if (it != memo.end()) return it->second;
      const PredicateFacts& pf = StateOf(pred);
      if (!pf.possibly_nonempty) return memo[pred] = 0;
      size_t seed = 0;
      auto sit = seeded_card_.find(pred);
      if (sit != seeded_card_.end()) seed = sit->second;
      if (recursive(pred)) {
        return memo[pred] = std::max(DomainBound(pf), seed == kCardUnbounded
                                                          ? kCardUnbounded
                                                          : seed);
      }
      memo[pred] = DomainBound(pf);  // cycle guard for safety
      size_t total = seed;
      for (size_t ri = 0; ri < program_.rules.size(); ++ri) {
        const Rule& rule = program_.rules[ri];
        if (rule.head.predicate != pred) continue;
        if (ri < rule_fires_.size() && !rule_fires_[ri]) continue;
        size_t rule_card = 1;
        for (const Literal& lit : rule.body) {
          if (lit.kind != Literal::Kind::kAtom) continue;
          rule_card = CardMul(rule_card, card(lit.atom.predicate));
        }
        total = CardAdd(total, rule_card);
      }
      return memo[pred] = std::min(total, DomainBound(pf));
    };
    for (auto& [pred, pf] : result_.predicates) {
      pf.cardinality = card(pred);
    }
  }

  const Program& program_;
  const EdbSeeds& seeds_;
  const DataflowOptions& options_;

  DataflowResult result_;
  std::set<std::string> idb_;
  std::map<std::string, size_t> seeded_card_;
  std::vector<bool> rule_fires_;
  bool changed_ = false;
  bool widen_ = false;
  bool contribute_ = true;
};

}  // namespace

const char* FindingCheckId(FindingKind kind) {
  switch (kind) {
    case FindingKind::kEmptyRule:
      return "dataflow/empty-rule";
    case FindingKind::kTypeClash:
      return "dataflow/position-type-clash";
    case FindingKind::kContradictoryComparisons:
      return "dataflow/contradictory-comparisons";
    case FindingKind::kUnsatisfiableGuard:
      return "dataflow/unsatisfiable-guard";
  }
  return "dataflow/unknown";
}

bool DataflowResult::RuleProvablyEmpty(size_t rule_index) const {
  // Every finding kind is an emptiness proof: the rule's body can never
  // be satisfied, so the rule never derives a fact.
  return rule_index < rule_findings.size() &&
         !rule_findings[rule_index].empty();
}

std::map<std::string, size_t> DataflowResult::CardinalityPriors() const {
  std::map<std::string, size_t> priors;
  for (const auto& [pred, pf] : predicates) {
    if (pf.cardinality > 0 && pf.cardinality != kCardUnbounded) {
      priors[pred] = pf.cardinality;
    }
  }
  return priors;
}

EdbSeeds SeedsFromDatabase(const Database& db, size_t scan_cap) {
  EdbSeeds seeds;
  for (const std::string& pred : db.Predicates()) {
    const std::vector<Tuple>& facts = db.facts(pred);
    PredicateSeed seed;
    seed.cardinality = facts.size();
    if (facts.empty()) {
      seeds.emplace(pred, std::move(seed));
      continue;
    }
    if (facts.size() > scan_cap) {
      seed.positions.assign(facts.front().size(), PosFacts::Top());
      seeds.emplace(pred, std::move(seed));
      continue;
    }
    seed.positions.assign(facts.front().size(), PosFacts::Bottom());
    for (const Tuple& t : facts) {
      for (size_t i = 0; i < t.size() && i < seed.positions.size(); ++i) {
        seed.positions[i] =
            seed.positions[i].Join(PosFacts::FromValue(t.at(i)));
      }
    }
    seeds.emplace(pred, std::move(seed));
  }
  return seeds;
}

DataflowResult AnalyzeDataflow(const Program& program, const EdbSeeds& seeds,
                               const DataflowOptions& options) {
  Analysis analysis(program, seeds, options);
  return analysis.Run();
}

}  // namespace vada::datalog::dataflow
