#ifndef VADA_DATALOG_ANALYSIS_DATAFLOW_DATAFLOW_H_
#define VADA_DATALOG_ANALYSIS_DATAFLOW_DATAFLOW_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "datalog/analysis/dataflow/lattice.h"
#include "datalog/ast.h"

namespace vada::datalog {
class Database;
}  // namespace vada::datalog

namespace vada::datalog::dataflow {

/// Seed facts about one EDB predicate: what the database (or a schema
/// catalog) already knows before any rule fires.
struct PredicateSeed {
  /// Exact fact count when seeded from a Database; kCardUnbounded when
  /// only a schema is known (catalog seeding).
  size_t cardinality = 0;
  /// Per-position abstraction of the stored facts; may be shorter than
  /// the arity used in the program (missing positions default to ⊤).
  std::vector<PosFacts> positions;
};

/// predicate name -> seed. Predicates absent from the map are handled
/// per DataflowOptions::assume_unknown_nonempty.
using EdbSeeds = std::map<std::string, PredicateSeed>;

/// Builds seeds by scanning `db`. Relations larger than `scan_cap`
/// facts get exact cardinality but ⊤ position abstractions (scanning
/// millions of rows to build a 32-element const set is wasted work).
EdbSeeds SeedsFromDatabase(const Database& db, size_t scan_cap = 4096);

struct DataflowOptions {
  /// Open world (lint without a knowledge base): body predicates that
  /// are neither derived by the program nor seeded are assumed to
  /// possibly hold any facts (⊤). Closed world (optimizer over a real
  /// database): such predicates are provably empty.
  bool assume_unknown_nonempty = true;
  /// Fixpoint rounds before intervals widen to ±inf. The other domains
  /// are finite, so this is the only termination knob.
  size_t widen_after = 4;
};

/// Why a rule can provably never derive a fact (or violates typing).
/// Ordered roughly most-specific-first; one finding per cause.
enum class FindingKind {
  /// A body atom reads a predicate that can never hold a matching fact
  /// (provably-empty relation, or a join over disjoint value sets).
  kEmptyRule,
  /// A variable (or constant) meets positions of disjoint runtime
  /// types, or a non-numeric value flows into arithmetic.
  kTypeClash,
  /// Comparison refinement left a variable with no possible value
  /// (e.g. X = 5, X > 7).
  kContradictoryComparisons,
  /// A single comparison that can never succeed on its own: constant
  /// vs constant, or operands of never-comparable types.
  kUnsatisfiableGuard,
};

/// "dataflow/empty-rule" etc. — the vada_lint check id of a kind.
const char* FindingCheckId(FindingKind kind);

struct RuleFinding {
  FindingKind kind = FindingKind::kEmptyRule;
  SourcePos pos;        ///< offending literal/term, rule head as fallback
  std::string message;  ///< human-readable cause
};

/// Everything the fixpoint inferred about one predicate.
struct PredicateFacts {
  std::vector<PosFacts> positions;
  /// Static upper bound on the number of distinct facts (kCardUnbounded
  /// when recursion over an unbounded domain defeats the analysis).
  size_t cardinality = 0;
  /// False means *provably* empty: no seed facts and no rule can fire.
  bool possibly_nonempty = false;
};

struct DataflowResult {
  std::map<std::string, PredicateFacts> predicates;
  /// Parallel to Program::rules; empty vector per rule means clean.
  std::vector<std::vector<RuleFinding>> rule_findings;

  /// True when every finding list of `rule_index` is empty.
  bool RuleIsClean(size_t rule_index) const {
    return rule_index >= rule_findings.size() ||
           rule_findings[rule_index].empty();
  }
  /// True when some finding proves the rule can never derive a fact.
  bool RuleProvablyEmpty(size_t rule_index) const;

  /// Finite, non-zero cardinality bounds — the planner's static priors
  /// for predicates with no runtime stats (PlannerOptions::priors).
  std::map<std::string, size_t> CardinalityPriors() const;
};

/// Abstract interpretation of `program` over the lattices of lattice.h,
/// to fixpoint through recursion (interval widening guarantees
/// termination). Pure function; never fails — ill-typed programs come
/// back with findings, not errors.
DataflowResult AnalyzeDataflow(const Program& program, const EdbSeeds& seeds,
                               const DataflowOptions& options = {});

}  // namespace vada::datalog::dataflow

#endif  // VADA_DATALOG_ANALYSIS_DATAFLOW_DATAFLOW_H_
