#include "datalog/analysis/dataflow/lattice.h"

#include <algorithm>
#include <cmath>

namespace vada::datalog::dataflow {

namespace {

/// Numeric view shared with the engine's CompareValues coercion.
std::optional<double> NumericOf(const Value& v) { return v.AsDouble(); }

/// Coercing equality: int/double compare by numeric value, everything
/// else exactly. Matches the engine's CompareValues(a, b) == 0.
bool CoercedEq(const Value& a, const Value& b) {
  std::optional<double> na = NumericOf(a);
  std::optional<double> nb = NumericOf(b);
  if (na.has_value() && nb.has_value()) return *na == *nb;
  return a == b;
}

}  // namespace

std::string TypeSet::ToString() const {
  if (empty()) return "⊥";
  if (is_top()) return "any";
  std::string out = "{";
  bool first = true;
  for (ValueType t : {ValueType::kNull, ValueType::kBool, ValueType::kInt,
                      ValueType::kDouble, ValueType::kString}) {
    if (!Contains(t)) continue;
    if (!first) out += ",";
    out += ValueTypeName(t);
    first = false;
  }
  return out + "}";
}

Interval Interval::Union(const Interval& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

Interval Interval::Intersect(const Interval& o) const {
  if (empty() || o.empty()) return Empty();
  return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
}

Interval Interval::WidenFrom(const Interval& prev) const {
  if (empty()) return *this;
  if (prev.empty()) return *this;
  Interval out = *this;
  if (lo < prev.lo) out.lo = -std::numeric_limits<double>::infinity();
  if (hi > prev.hi) out.hi = std::numeric_limits<double>::infinity();
  return out;
}

std::string Interval::ToString() const {
  if (empty()) return "⊥";
  auto bound = [](double v) {
    if (std::isinf(v)) return std::string(v < 0 ? "-inf" : "inf");
    if (v == std::floor(v) && std::abs(v) < 1e15) {
      return std::to_string(static_cast<int64_t>(v));
    }
    return std::to_string(v);
  };
  return "[" + bound(lo) + ", " + bound(hi) + "]";
}

bool ConstSet::Contains(const Value& v) const {
  if (top_) return true;
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool ConstSet::ContainsCoerced(const Value& v) const {
  if (top_) return true;
  for (const Value& m : values_) {
    if (CoercedEq(m, v)) return true;
  }
  return false;
}

void ConstSet::Insert(const Value& v) {
  if (top_) return;
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) return;
  if (values_.size() >= kMaxConsts) {
    top_ = true;
    values_.clear();
    return;
  }
  values_.insert(it, v);
}

void ConstSet::UnionWith(const ConstSet& o) {
  if (top_) return;
  if (o.top_) {
    top_ = true;
    values_.clear();
    return;
  }
  for (const Value& v : o.values_) Insert(v);
}

ConstSet ConstSet::Intersect(const ConstSet& o) const {
  if (top_) return o;
  if (o.top_) return *this;
  ConstSet out;
  for (const Value& v : values_) {
    if (o.Contains(v)) out.Insert(v);
  }
  return out;
}

ConstSet ConstSet::IntersectCoerced(const ConstSet& o) const {
  if (top_) return o;
  if (o.top_) return *this;
  // Keep members of either side that the other side accepts under
  // coercion, so {Int 3} ∩ {Double 3.0} keeps both spellings.
  ConstSet out;
  for (const Value& v : values_) {
    if (o.ContainsCoerced(v)) out.Insert(v);
  }
  for (const Value& v : o.values_) {
    if (ContainsCoerced(v)) out.Insert(v);
  }
  return out;
}

std::string ConstSet::ToString() const {
  if (top_) return "⊤";
  if (values_.empty()) return "⊥";
  std::string out = "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToLiteral();
  }
  return out + "}";
}

PosFacts PosFacts::FromValue(const Value& v) {
  PosFacts out;
  out.types = TypeSet::Of(v.type());
  out.consts = ConstSet::Of(v);
  std::optional<double> n = v.AsDouble();
  out.range = n.has_value() ? Interval::Point(*n) : Interval::Top();
  return out;
}

PosFacts PosFacts::Join(const PosFacts& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  PosFacts out;
  out.types = types.Union(o.types);
  out.consts = consts;
  out.consts.UnionWith(o.consts);
  out.range = range.Union(o.range);
  return out;
}

PosFacts PosFacts::Meet(const PosFacts& o) const {
  PosFacts out;
  out.types = types.Intersect(o.types);
  out.consts = consts.Intersect(o.consts);
  out.range = range.Intersect(o.range);
  return out;
}

PosFacts PosFacts::MeetCoerced(const PosFacts& o) const {
  PosFacts out;
  out.types = types.Intersect(o.types);
  // Under coercion a value passes as long as *some* numeric spelling
  // exists on both sides: keep the union of the numeric types whenever
  // both sides can be numeric.
  if (types.ContainsNumeric() && o.types.ContainsNumeric()) {
    out.types = out.types.Union(
        types.Union(o.types).Intersect(TypeSet::Numeric()));
  }
  out.consts = consts.IntersectCoerced(o.consts);
  out.range = range.Intersect(o.range);
  return out;
}

PosFacts PosFacts::JoinWidened(const PosFacts& o) const {
  PosFacts joined = Join(o);
  joined.range = joined.range.WidenFrom(range);
  return joined;
}

std::string PosFacts::ToString() const {
  if (empty()) return "⊥";
  std::string out = types.ToString();
  if (!consts.is_top()) out += " " + consts.ToString();
  if (!range.is_top() && types.ContainsNumeric()) {
    out += " " + range.ToString();
  }
  return out;
}

size_t CardAdd(size_t a, size_t b) {
  if (a == kCardUnbounded || b == kCardUnbounded) return kCardUnbounded;
  if (a > kCardUnbounded - b) return kCardUnbounded;
  return a + b;
}

size_t CardMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kCardUnbounded || b == kCardUnbounded) return kCardUnbounded;
  if (a > kCardUnbounded / b) return kCardUnbounded;
  return a * b;
}

std::string CardToString(size_t card) {
  return card == kCardUnbounded ? "unbounded" : std::to_string(card);
}

}  // namespace vada::datalog::dataflow
