#ifndef VADA_DATALOG_ANALYSIS_DATAFLOW_OPTIMIZER_H_
#define VADA_DATALOG_ANALYSIS_DATAFLOW_OPTIMIZER_H_

#include <cstddef>
#include <string>

#include "datalog/analysis/dataflow/dataflow.h"
#include "datalog/ast.h"

namespace vada::datalog::dataflow {

/// Which rewrites ProgramOptimizer applies. All default on; the whole
/// pipeline is reached only through PlannerOptions::optimize, which
/// defaults off (rewrites may permute row order within a predicate's
/// derivation, so golden row-order tests opt in explicitly).
struct OptimizerOptions {
  /// Substitute constant assignments (Z = 3, Z = 1 + 2) into the rule
  /// and evaluate constant-vs-constant comparisons away.
  bool fold_constants = true;
  /// Drop rules the dataflow analysis proves can never fire.
  bool eliminate_dead = true;
  /// With a goal: drop rules that cannot contribute to it.
  bool eliminate_unreachable = true;
  /// With a goal: demand-driven (magic-set) specialization of recursive
  /// predicates called with bound arguments.
  bool magic_sets = true;
  /// Closed world: predicates that are neither derived nor present in
  /// the seeds are provably empty. The Query/session path seeds from
  /// the actual database, so this is sound there; pass false when
  /// seeding from a schema-only catalog.
  bool assume_unknown_empty = true;
};

/// What one OptimizeProgram run did — rendered by vada_explain and
/// asserted on by tests.
struct OptimizerReport {
  size_t folded_assignments = 0;   ///< constant assignments substituted away
  size_t folded_comparisons = 0;   ///< constant guards evaluated away
  size_t dead_rules = 0;           ///< provably-empty rules dropped
  size_t unreachable_rules = 0;    ///< rules that cannot feed the goal
  size_t magic_rules = 0;          ///< demand (magic) rules added
  size_t specialized_rules = 0;    ///< adorned copies of original rules
  bool magic_applied = false;
  /// Non-empty when the magic-set transform was attempted but rolled
  /// back (post-transform validation or stratification failed).
  std::string magic_fallback;

  std::string Summary() const;
};

struct OptimizeResult {
  Program program;
  OptimizerReport report;
};

/// Semantics-preserving rewrite pipeline over a validated program:
/// constant folding, dead-rule elimination, goal-directed unreachable-
/// rule elimination, and a magic-set transformation specializing
/// recursion toward `goal_predicate` (empty goal: the goal-directed
/// passes are skipped). The output program derives exactly the same
/// facts for `goal_predicate` as the input over any database matching
/// `seeds` — the differential fuzz harness checks this bit-for-bit.
/// The transformed program is re-validated and re-stratified; on any
/// failure the magic transform rolls back to the pre-magic program, so
/// the result is always evaluable if the input was.
OptimizeResult OptimizeProgram(const Program& program,
                               const std::string& goal_predicate,
                               const EdbSeeds& seeds,
                               const OptimizerOptions& options = {});

}  // namespace vada::datalog::dataflow

#endif  // VADA_DATALOG_ANALYSIS_DATAFLOW_OPTIMIZER_H_
