#include "datalog/analysis/dataflow/optimizer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "datalog/evaluator.h"
#include "datalog/stratify.h"

namespace vada::datalog::dataflow {

namespace {

bool GuardSatisfied(CompareOp op, const Value& a, const Value& b) {
  std::optional<int> cmp = CompareValues(a, b);
  switch (op) {
    case CompareOp::kEq:
      return cmp.has_value() && *cmp == 0;
    case CompareOp::kNe:
      return !cmp.has_value() || *cmp != 0;
    case CompareOp::kLt:
      return cmp.has_value() && *cmp < 0;
    case CompareOp::kLe:
      return cmp.has_value() && *cmp <= 0;
    case CompareOp::kGt:
      return cmp.has_value() && *cmp > 0;
    case CompareOp::kGe:
      return cmp.has_value() && *cmp >= 0;
  }
  return true;
}

// ---------------------------------------------------------------------
// Constant folding.
// ---------------------------------------------------------------------

void SubstituteVar(Term* t, const std::string& var, const Value& c) {
  if (t->is_variable() && t->var() == var) {
    SourcePos pos = t->pos();
    *t = Term::Constant(c);
    t->set_pos(pos);
  }
}

/// Folds one rule in place: constant arithmetic collapses to constant
/// copies, always-true constant guards disappear, and constant copy
/// assignments substitute into the rest of the rule. Only assignments
/// that are the *sole* binder of their variable fold — an assignment
/// over a variable bound elsewhere is an equality check with coercing
/// semantics (Int(7) passes a Double(7.0) check) that exact
/// substitution would not preserve. Always-false guards are left in
/// place for the dataflow pass to prove the rule dead.
void FoldRule(Rule* rule, OptimizerReport* report) {
  bool changed = true;
  while (changed) {
    changed = false;

    for (Literal& lit : rule->body) {
      if (lit.kind == Literal::Kind::kAssignment &&
          lit.arith_op != ArithOp::kNone && lit.lhs.is_constant() &&
          lit.rhs.is_constant()) {
        std::optional<Value> r =
            ApplyArith(lit.arith_op, lit.lhs.value(), lit.rhs.value());
        if (!r.has_value()) continue;  // fails at runtime; leave as-is
        SourcePos pos = lit.lhs.pos();
        lit.arith_op = ArithOp::kNone;
        lit.lhs = Term::Constant(std::move(*r));
        lit.lhs.set_pos(pos);
        changed = true;
      }
    }

    for (auto it = rule->body.begin(); it != rule->body.end(); ++it) {
      if (it->kind == Literal::Kind::kComparison && it->lhs.is_constant() &&
          it->rhs.is_constant() &&
          GuardSatisfied(it->compare_op, it->lhs.value(),
                         it->rhs.value())) {
        rule->body.erase(it);
        ++report->folded_comparisons;
        changed = true;
        break;
      }
    }
    if (changed) continue;

    for (size_t li = 0; li < rule->body.size(); ++li) {
      const Literal& lit = rule->body[li];
      if (lit.kind != Literal::Kind::kAssignment ||
          lit.arith_op != ArithOp::kNone || !lit.lhs.is_constant()) {
        continue;
      }
      const std::string z = lit.assign_var;
      bool sole_binder = true;
      for (size_t lj = 0; lj < rule->body.size() && sole_binder; ++lj) {
        const Literal& other = rule->body[lj];
        if (other.kind == Literal::Kind::kAtom) {
          for (const Term& t : other.atom.terms) {
            if (t.is_variable() && t.var() == z) sole_binder = false;
          }
        } else if (lj != li && other.kind == Literal::Kind::kAssignment &&
                   other.assign_var == z) {
          sole_binder = false;
        }
      }
      for (const Term& t : rule->head.terms) {
        if (t.is_aggregate() && t.var() == z) sole_binder = false;
      }
      if (!sole_binder) continue;

      const Value c = lit.lhs.value();
      rule->body.erase(rule->body.begin() + static_cast<long>(li));
      for (Term& t : rule->head.terms) SubstituteVar(&t, z, c);
      for (Literal& other : rule->body) {
        switch (other.kind) {
          case Literal::Kind::kAtom:
          case Literal::Kind::kNegatedAtom:
            for (Term& t : other.atom.terms) SubstituteVar(&t, z, c);
            break;
          case Literal::Kind::kComparison:
          case Literal::Kind::kAssignment:
            SubstituteVar(&other.lhs, z, c);
            SubstituteVar(&other.rhs, z, c);
            break;
        }
      }
      ++report->folded_assignments;
      changed = true;
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Magic-set transformation.
// ---------------------------------------------------------------------

/// Demand-driven specialization toward the goal: predicates called with
/// bound arguments get adorned copies (`p__bf`) guarded by demand
/// predicates (`m__p__bf`) seeded from their callers' join prefixes,
/// so recursion explores only the bindings the goal can reach.
/// Restrictions that keep the rewrite exact:
///  * aggregate-headed predicates are never specialized (a group needs
///    its full extension);
///  * negated calls keep the original predicate, whose rules are then
///    retained in full;
///  * callees that may also hold EDB facts get a bridge rule copying
///    the demanded slice of the stored relation;
///  * the transformed program is re-validated and re-stratified, with
///    rollback on failure.
class MagicTransformer {
 public:
  MagicTransformer(const Program& program, const std::string& goal,
                   const EdbSeeds& seeds, bool assume_unknown_empty)
      : program_(program),
        goal_(goal),
        seeds_(seeds),
        assume_unknown_empty_(assume_unknown_empty) {}

  /// Returns true (and fills `out`) when specialization applied; false
  /// when the program has nothing to specialize or the transform had
  /// to bail (name collision, size explosion).
  bool Run(Program* out, OptimizerReport* report) {
    for (const Rule& r : program_.rules) {
      idb_.insert(r.head.predicate);
      rules_by_head_[r.head.predicate].push_back(&r);
      if (r.HasAggregates()) aggregate_heads_.insert(r.head.predicate);
      existing_.insert(r.head.predicate);
      for (const Literal& lit : r.body) {
        if (lit.kind == Literal::Kind::kAtom ||
            lit.kind == Literal::Kind::kNegatedAtom) {
          existing_.insert(lit.atom.predicate);
        }
      }
    }
    EnqueueFull(goal_);
    const size_t rule_cap = 8 * program_.rules.size() + 64;
    while (!full_queue_.empty() || !adorned_queue_.empty()) {
      if (failed_ || transformed_.size() + magic_rules_.size() > rule_cap) {
        return false;
      }
      if (!full_queue_.empty()) {
        std::string pred = full_queue_.front();
        full_queue_.pop_front();
        auto it = rules_by_head_.find(pred);
        if (it == rules_by_head_.end()) continue;
        for (const Rule* r : it->second) {
          TransformRule(*r, /*adornment=*/"");
        }
        continue;
      }
      auto [pred, ad] = adorned_queue_.front();
      adorned_queue_.pop_front();
      MaybeEmitEdbBridge(pred, ad);
      auto it = rules_by_head_.find(pred);
      if (it == rules_by_head_.end()) continue;
      for (const Rule* r : it->second) {
        TransformRule(*r, ad);
      }
    }
    if (failed_ || specialized_calls_ == 0) return false;

    out->rules.clear();
    out->rules.reserve(magic_rules_.size() + transformed_.size());
    for (Rule& r : magic_rules_) out->rules.push_back(std::move(r));
    for (Rule& r : transformed_) out->rules.push_back(std::move(r));
    report->magic_rules = magic_rules_.size();
    report->specialized_rules = specialized_count_;
    return true;
  }

 private:
  static std::string SpecName(const std::string& pred,
                              const std::string& ad) {
    return pred + "__" + ad;
  }
  static std::string MagicName(const std::string& pred,
                               const std::string& ad) {
    return "m__" + pred + "__" + ad;
  }

  void EnqueueFull(const std::string& pred) {
    if (full_done_.insert(pred).second) full_queue_.push_back(pred);
  }
  void EnqueueAdorned(const std::string& pred, const std::string& ad) {
    if (adorned_done_.insert(pred + "#" + ad).second) {
      adorned_queue_.emplace_back(pred, ad);
    }
  }

  /// A predicate may hold stored (EDB) facts in addition to its rules;
  /// the adorned copies only re-derive the rule part, so the demanded
  /// slice of the stored relation is bridged over explicitly.
  void MaybeEmitEdbBridge(const std::string& pred, const std::string& ad) {
    auto seed = seeds_.find(pred);
    const bool may_have_edb =
        (seed != seeds_.end() && seed->second.cardinality > 0) ||
        (seed == seeds_.end() && !assume_unknown_empty_);
    if (!may_have_edb) return;
    Rule bridge;
    bridge.head.predicate = SpecName(pred, ad);
    Atom magic;
    magic.predicate = MagicName(pred, ad);
    Atom body;
    body.predicate = pred;
    for (size_t i = 0; i < ad.size(); ++i) {
      Term v = Term::Variable("V" + std::to_string(i));
      bridge.head.terms.push_back(v);
      body.terms.push_back(v);
      if (ad[i] == 'b') magic.terms.push_back(v);
    }
    bridge.body.push_back(Literal::Positive(std::move(magic)));
    bridge.body.push_back(Literal::Positive(std::move(body)));
    magic_rules_.push_back(std::move(bridge));
  }

  void CheckName(const std::string& name) {
    if (existing_.count(name) > 0) failed_ = true;
  }

  /// Emits the adorned copy of `rule` (original head name when
  /// `adornment` is empty — full demand), plus one magic rule per
  /// specialized body call.
  void TransformRule(const Rule& rule, const std::string& adornment) {
    Rule out;
    out.pos = rule.pos;
    out.head = rule.head;

    std::set<std::string> avail;
    std::vector<Literal> ready_prefix;  // safe demand context so far

    if (!adornment.empty()) {
      out.head.predicate = SpecName(rule.head.predicate, adornment);
      CheckName(out.head.predicate);
      Atom guard;
      guard.predicate = MagicName(rule.head.predicate, adornment);
      CheckName(guard.predicate);
      guard.pos = rule.pos;
      for (size_t i = 0; i < adornment.size(); ++i) {
        if (adornment[i] != 'b' || i >= rule.head.terms.size()) continue;
        const Term& t = rule.head.terms[i];
        guard.terms.push_back(t);
        if (t.is_variable()) avail.insert(t.var());
      }
      Literal glit = Literal::Positive(std::move(guard));
      out.body.push_back(glit);
      ready_prefix.push_back(std::move(glit));
    }

    for (const Literal& lit : rule.body) {
      switch (lit.kind) {
        case Literal::Kind::kAtom: {
          const std::string& q = lit.atom.predicate;
          std::string ad;
          ad.reserve(lit.atom.terms.size());
          bool any_bound = false;
          for (const Term& t : lit.atom.terms) {
            const bool bound =
                t.is_constant() ||
                (t.is_variable() && avail.count(t.var()) > 0);
            ad.push_back(bound ? 'b' : 'f');
            any_bound |= bound;
          }
          const bool specialize = any_bound && idb_.count(q) > 0 &&
                                  aggregate_heads_.count(q) == 0;
          Literal nl = lit;
          if (specialize) {
            CheckName(SpecName(q, ad));
            CheckName(MagicName(q, ad));
            Rule magic;
            magic.pos = lit.pos;
            magic.head.predicate = MagicName(q, ad);
            magic.head.pos = lit.atom.pos;
            for (size_t i = 0; i < ad.size(); ++i) {
              if (ad[i] == 'b') magic.head.terms.push_back(lit.atom.terms[i]);
            }
            magic.body = ready_prefix;
            magic_rules_.push_back(std::move(magic));
            EnqueueAdorned(q, ad);
            nl.atom.predicate = SpecName(q, ad);
            ++specialized_calls_;
          } else if (idb_.count(q) > 0) {
            EnqueueFull(q);
          }
          out.body.push_back(nl);
          ready_prefix.push_back(nl);
          for (const Term& t : lit.atom.terms) {
            if (t.is_variable()) avail.insert(t.var());
          }
          break;
        }
        case Literal::Kind::kNegatedAtom: {
          if (idb_.count(lit.atom.predicate) > 0) {
            EnqueueFull(lit.atom.predicate);
          }
          out.body.push_back(lit);
          bool ready = true;
          for (const Term& t : lit.atom.terms) {
            if (t.is_variable() && avail.count(t.var()) == 0) ready = false;
          }
          if (ready) ready_prefix.push_back(lit);
          break;
        }
        case Literal::Kind::kComparison: {
          out.body.push_back(lit);
          bool ready =
              (!lit.lhs.is_variable() || avail.count(lit.lhs.var()) > 0) &&
              (!lit.rhs.is_variable() || avail.count(lit.rhs.var()) > 0);
          if (ready) ready_prefix.push_back(lit);
          break;
        }
        case Literal::Kind::kAssignment: {
          out.body.push_back(lit);
          bool ready =
              (!lit.lhs.is_variable() || avail.count(lit.lhs.var()) > 0) &&
              (lit.arith_op == ArithOp::kNone || !lit.rhs.is_variable() ||
               avail.count(lit.rhs.var()) > 0);
          // An assignment over an already-bound variable is a check,
          // not a binder; either way, once ready it may join the
          // demand context and bind its variable for adornments.
          if (ready) {
            ready_prefix.push_back(lit);
            avail.insert(lit.assign_var);
          }
          break;
        }
      }
    }
    transformed_.push_back(std::move(out));
    if (!adornment.empty()) ++specialized_count_;
  }

  const Program& program_;
  const std::string goal_;
  const EdbSeeds& seeds_;
  const bool assume_unknown_empty_;

  std::set<std::string> idb_;
  std::set<std::string> aggregate_heads_;
  std::set<std::string> existing_;
  std::map<std::string, std::vector<const Rule*>> rules_by_head_;

  std::deque<std::string> full_queue_;
  std::deque<std::pair<std::string, std::string>> adorned_queue_;
  std::set<std::string> full_done_;
  std::set<std::string> adorned_done_;

  std::vector<Rule> transformed_;
  std::vector<Rule> magic_rules_;
  size_t specialized_calls_ = 0;
  size_t specialized_count_ = 0;
  bool failed_ = false;
};

}  // namespace

std::string OptimizerReport::Summary() const {
  std::string out;
  auto add = [&out](const std::string& part) {
    if (!out.empty()) out += ", ";
    out += part;
  };
  if (folded_assignments > 0) {
    add(std::to_string(folded_assignments) + " assignment(s) folded");
  }
  if (folded_comparisons > 0) {
    add(std::to_string(folded_comparisons) + " guard(s) folded");
  }
  if (dead_rules > 0) add(std::to_string(dead_rules) + " dead rule(s)");
  if (unreachable_rules > 0) {
    add(std::to_string(unreachable_rules) + " unreachable rule(s)");
  }
  if (magic_applied) {
    add("magic: " + std::to_string(specialized_rules) +
        " specialized rule(s), " + std::to_string(magic_rules) +
        " demand rule(s)");
  } else if (!magic_fallback.empty()) {
    add("magic rolled back: " + magic_fallback);
  }
  if (out.empty()) out = "no rewrites applied";
  return out;
}

OptimizeResult OptimizeProgram(const Program& program,
                               const std::string& goal_predicate,
                               const EdbSeeds& seeds,
                               const OptimizerOptions& options) {
  OptimizeResult result;
  result.program = program;
  OptimizerReport& report = result.report;

  if (options.fold_constants) {
    for (Rule& rule : result.program.rules) FoldRule(&rule, &report);
  }

  if (options.eliminate_dead) {
    DataflowOptions dopt;
    dopt.assume_unknown_nonempty = !options.assume_unknown_empty;
    DataflowResult df = AnalyzeDataflow(result.program, seeds, dopt);
    std::vector<Rule> kept;
    kept.reserve(result.program.rules.size());
    for (size_t ri = 0; ri < result.program.rules.size(); ++ri) {
      if (df.RuleProvablyEmpty(ri)) {
        ++report.dead_rules;
      } else {
        kept.push_back(std::move(result.program.rules[ri]));
      }
    }
    result.program.rules = std::move(kept);
  }

  if (options.eliminate_unreachable && !goal_predicate.empty()) {
    std::set<std::string> reachable{goal_predicate};
    bool grew = true;
    while (grew) {
      grew = false;
      for (const Rule& rule : result.program.rules) {
        if (reachable.count(rule.head.predicate) == 0) continue;
        for (const Literal& lit : rule.body) {
          if (lit.kind != Literal::Kind::kAtom &&
              lit.kind != Literal::Kind::kNegatedAtom) {
            continue;
          }
          if (reachable.insert(lit.atom.predicate).second) grew = true;
        }
      }
    }
    std::vector<Rule> kept;
    kept.reserve(result.program.rules.size());
    for (Rule& rule : result.program.rules) {
      if (reachable.count(rule.head.predicate) > 0) {
        kept.push_back(std::move(rule));
      } else {
        ++report.unreachable_rules;
      }
    }
    result.program.rules = std::move(kept);
  }

  if (options.magic_sets && !goal_predicate.empty()) {
    MagicTransformer magic(result.program, goal_predicate, seeds,
                           options.assume_unknown_empty);
    Program transformed;
    if (magic.Run(&transformed, &report)) {
      Status valid = transformed.Validate();
      if (valid.ok()) {
        Result<Stratification> strat = Stratify(transformed);
        if (strat.ok()) {
          result.program = std::move(transformed);
          report.magic_applied = true;
        } else {
          report.magic_fallback = strat.status().message();
        }
      } else {
        report.magic_fallback = valid.message();
      }
      if (!report.magic_applied) {
        report.magic_rules = 0;
        report.specialized_rules = 0;
      }
    }
  }

  return result;
}

}  // namespace vada::datalog::dataflow
