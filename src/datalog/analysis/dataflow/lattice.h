#ifndef VADA_DATALOG_ANALYSIS_DATAFLOW_LATTICE_H_
#define VADA_DATALOG_ANALYSIS_DATAFLOW_LATTICE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "kb/value.h"

namespace vada::datalog::dataflow {

/// The abstract domains of the dataflow analysis (DESIGN.md §5h). Each
/// predicate position is described by three cooperating lattices:
///
///   TypeSet   which runtime ValueTypes can occur there,
///   ConstSet  which exact Values can occur (small set, or ⊤),
///   Interval  numeric range when the position is numeric.
///
/// All three are *over*-approximations of the concrete value set: ⊥
/// (empty) means "no value can ever occur here", ⊤ means "anything".
/// Soundness contract: every concrete fact the engine can derive is
/// contained in the abstraction, so emptiness proofs (the lint verdicts
/// and the optimizer's dead-rule elimination) are exact.

// ---------------------------------------------------------------------
// TypeSet: a bitmask over ValueType. Finite lattice of height 5.
// ---------------------------------------------------------------------
class TypeSet {
 public:
  /// ⊥ — no value possible.
  static TypeSet Bottom() { return TypeSet(0); }
  /// ⊤ — any runtime type.
  static TypeSet Top() { return TypeSet(kAllBits); }
  static TypeSet Of(ValueType t) { return TypeSet(Bit(t)); }
  /// {int, double} — the operand types arithmetic accepts.
  static TypeSet Numeric() {
    return TypeSet(Bit(ValueType::kInt) | Bit(ValueType::kDouble));
  }

  bool empty() const { return bits_ == 0; }
  bool is_top() const { return bits_ == kAllBits; }
  bool Contains(ValueType t) const { return (bits_ & Bit(t)) != 0; }
  bool ContainsNumeric() const {
    return (bits_ & Numeric().bits_) != 0;
  }
  /// True when every member type is int or double.
  bool NumericOnly() const {
    return bits_ != 0 && (bits_ & ~Numeric().bits_) == 0;
  }

  TypeSet Union(TypeSet o) const { return TypeSet(bits_ | o.bits_); }
  TypeSet Intersect(TypeSet o) const { return TypeSet(bits_ & o.bits_); }

  friend bool operator==(TypeSet a, TypeSet b) { return a.bits_ == b.bits_; }
  friend bool operator!=(TypeSet a, TypeSet b) { return a.bits_ != b.bits_; }

  /// "{int,double}", "⊥" or "any".
  std::string ToString() const;

 private:
  static constexpr uint8_t Bit(ValueType t) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(t));
  }
  static constexpr uint8_t kAllBits = 0x1F;  // null|bool|int|double|string

  explicit TypeSet(uint8_t bits) : bits_(bits) {}
  uint8_t bits_ = 0;
};

// ---------------------------------------------------------------------
// Interval: closed numeric range [lo, hi] with ±inf endpoints. Only
// meaningful for numeric values; non-numeric members of a position are
// not constrained by it. Closed bounds make strict comparisons an
// over-approximation (X > 3 refines lo to 3), which keeps refinement
// sound at the cost of missing the X > c, X < c contradiction.
// ---------------------------------------------------------------------
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval Top() { return Interval{}; }
  static Interval Point(double v) { return Interval{v, v}; }
  static Interval Empty() { return Interval{1, 0}; }

  bool empty() const { return lo > hi; }
  bool is_top() const {
    return lo == -std::numeric_limits<double>::infinity() &&
           hi == std::numeric_limits<double>::infinity();
  }
  bool Contains(double v) const { return lo <= v && v <= hi; }

  Interval Union(const Interval& o) const;
  Interval Intersect(const Interval& o) const;
  /// Standard widening: a bound that moved since `prev` jumps to ±inf,
  /// guaranteeing termination of recursive arithmetic (N' = N + 1).
  Interval WidenFrom(const Interval& prev) const;

  friend bool operator==(const Interval& a, const Interval& b) {
    return (a.empty() && b.empty()) || (a.lo == b.lo && a.hi == b.hi);
  }
  friend bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }

  /// "[3, 7]", "[-inf, 0]", "⊥".
  std::string ToString() const;
};

// ---------------------------------------------------------------------
// ConstSet: at most kMaxConsts distinct Values, overflowing to ⊤.
// ---------------------------------------------------------------------
class ConstSet {
 public:
  /// Values tracked before the set widens to ⊤. Small on purpose: the
  /// sets exist to prove emptiness and to bound recursive cardinality
  /// (|tc| <= |nodes|^2), not to enumerate data.
  static constexpr size_t kMaxConsts = 32;

  /// ⊥ — no value possible.
  static ConstSet None() { return ConstSet(); }
  /// ⊤ — unknown / too many values.
  static ConstSet Top() {
    ConstSet s;
    s.top_ = true;
    return s;
  }
  static ConstSet Of(const Value& v) {
    ConstSet s;
    s.Insert(v);
    return s;
  }

  bool is_top() const { return top_; }
  bool empty() const { return !top_ && values_.empty(); }
  size_t size() const { return values_.size(); }  ///< pre: !is_top()
  const std::vector<Value>& values() const { return values_; }

  /// Exact membership (Value::operator==: Int(3) != Double(3.0)).
  bool Contains(const Value& v) const;
  /// Membership under int/double coercion, mirroring the engine's
  /// CompareValues — Int(3) and Double(3.0) are the same value here.
  bool ContainsCoerced(const Value& v) const;

  /// May widen to ⊤ past kMaxConsts.
  void Insert(const Value& v);
  void UnionWith(const ConstSet& o);
  /// Exact intersection (atom joins match exactly).
  ConstSet Intersect(const ConstSet& o) const;
  /// Coercing intersection (comparison/assignment checks coerce).
  ConstSet IntersectCoerced(const ConstSet& o) const;

  friend bool operator==(const ConstSet& a, const ConstSet& b) {
    return a.top_ == b.top_ && a.values_ == b.values_;
  }
  friend bool operator!=(const ConstSet& a, const ConstSet& b) {
    return !(a == b);
  }

  /// "{1, 2, \"x\"}", "⊥" or "⊤".
  std::string ToString() const;

 private:
  bool top_ = false;
  std::vector<Value> values_;  // sorted, unique
};

// ---------------------------------------------------------------------
// PosFacts: the product lattice describing one predicate position (or
// one variable's abstract value inside a rule body).
// ---------------------------------------------------------------------
struct PosFacts {
  TypeSet types = TypeSet::Bottom();
  ConstSet consts = ConstSet::None();
  Interval range = Interval::Empty();

  static PosFacts Bottom() { return PosFacts{}; }
  static PosFacts Top() {
    return PosFacts{TypeSet::Top(), ConstSet::Top(), Interval::Top()};
  }
  /// The abstraction of one concrete value.
  static PosFacts FromValue(const Value& v);

  /// ⊥ — provably no value fits this description. The interval only
  /// participates when the position is numeric-only (a string member is
  /// unconstrained by it).
  bool empty() const {
    return types.empty() || (types.NumericOnly() && range.empty()) ||
           (!consts.is_top() && consts.empty());
  }

  /// Least upper bound (merging producers of a position).
  PosFacts Join(const PosFacts& o) const;
  /// Exact greatest lower bound (a variable bound at two positions must
  /// match both under Value::operator==).
  PosFacts Meet(const PosFacts& o) const;
  /// Coercing meet for comparison/assignment checks, where the engine
  /// compares through CompareValues: int and double unify.
  PosFacts MeetCoerced(const PosFacts& o) const;
  /// Join with interval widening against this (the previous round's)
  /// state; types and consts are finite so plain join suffices.
  PosFacts JoinWidened(const PosFacts& o) const;

  friend bool operator==(const PosFacts& a, const PosFacts& b) {
    return a.types == b.types && a.consts == b.consts && a.range == b.range;
  }
  friend bool operator!=(const PosFacts& a, const PosFacts& b) {
    return !(a == b);
  }

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Cardinality bounds: saturating arithmetic on fact-count upper bounds.
// ---------------------------------------------------------------------
inline constexpr size_t kCardUnbounded = std::numeric_limits<size_t>::max();

size_t CardAdd(size_t a, size_t b);
size_t CardMul(size_t a, size_t b);
/// "unbounded" or the number.
std::string CardToString(size_t card);

}  // namespace vada::datalog::dataflow

#endif  // VADA_DATALOG_ANALYSIS_DATAFLOW_LATTICE_H_
