#ifndef VADA_DATALOG_SYMBOL_TABLE_H_
#define VADA_DATALOG_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "kb/value.h"

namespace vada::datalog {

/// Dense id of an interned Value in the SymbolTable. Two ids are equal
/// iff the Values they name are equal under Value::operator== (strict:
/// Int(3) != Double(3.0)), which is exactly the equality the join loops
/// use — so the evaluator's hot path compares uint32s and never touches
/// a string (DESIGN.md §5j).
using SymbolId = uint32_t;

/// Sentinel for "no symbol" (never a valid id).
inline constexpr SymbolId kNoSymbol = 0xFFFFFFFFu;

/// Process-wide interning dictionary: Value -> dense uint32 id.
///
/// Invariants (the storage engine's contract, DESIGN.md §5j):
///  * ids are assigned densely from 0 in first-intern order and are
///    NEVER recycled or remapped for the lifetime of the process —
///    snapshot borrowing, copy-on-write detach and WriteGuard rollback
///    all preserve id meaning for free because nothing ever invalidates
///    an id;
///  * `value(id)` is wait-free and safe concurrently with `Intern`:
///    symbols live in fixed-size chunks whose addresses never move, so
///    a reader holding a legitimately obtained id never observes a
///    partially constructed Value;
///  * equal Values always intern to the same id (canonical), including
///    across threads. The one deliberate exception mirrors Value
///    equality itself: Double(NaN) != Double(NaN), so every NaN interns
///    fresh — exactly the semantics the row engine's hash sets had.
///
/// Ids never reach disk: WAL records, checkpoints and CSV exports
/// materialize Values at the KB boundary, so on-disk images are
/// independent of any process's intern order (DESIGN.md §5j).
class SymbolTable {
 public:
  SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  ~SymbolTable();

  /// The process-wide table every datalog::Database uses. A single
  /// shared table is what lets deltas, scratch copies, snapshots and
  /// WriteGuard pre-images compare ids without translation.
  static SymbolTable& Global();

  /// Returns the id of `v`, interning it if new. Thread-safe.
  SymbolId Intern(const Value& v);

  /// The id of `v` if already interned, nullopt otherwise. Never grows
  /// the table — use for containment checks on values that may not
  /// exist anywhere (a miss proves the fact cannot be stored).
  std::optional<SymbolId> Find(const Value& v) const;

  /// The Value behind `id`. Pre-condition: `id` was returned by Intern
  /// on this table. Wait-free; safe concurrently with Intern.
  const Value& value(SymbolId id) const {
    const Chunk* chunk =
        chunks_[id >> kChunkShift].load(std::memory_order_acquire);
    return chunk->values[id & kChunkMask];
  }

  /// Number of interned symbols.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Approximate resident bytes: chunk storage, string payloads and the
  /// intern map. Feeds the `vada_symtab_bytes` gauge (DESIGN.md §5b).
  size_t ApproxBytes() const;

 private:
  // 2^16 Values per chunk, 2^16 chunks: the full 32-bit id space.
  static constexpr size_t kChunkShift = 16;
  static constexpr size_t kChunkMask = (1u << kChunkShift) - 1;
  static constexpr size_t kMaxChunks = 1u << (32 - kChunkShift);

  struct Chunk {
    std::vector<Value> values;  // reserved to capacity up front
  };

  mutable Mutex mutex_;
  std::unordered_map<Value, SymbolId, ValueHash> ids_ VADA_GUARDED_BY(mutex_);
  size_t heap_bytes_ VADA_GUARDED_BY(mutex_) = 0;
  /// Chunk pointers are published with release stores after the chunk's
  /// Value slot is constructed; value() loads with acquire. Readers only
  /// dereference ids they obtained from data that was itself published
  /// (columns, compiled constants), so slot contents are synchronized.
  std::atomic<Chunk*> chunks_[kMaxChunks];
  std::atomic<size_t> size_{0};
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_SYMBOL_TABLE_H_
