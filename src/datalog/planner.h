#ifndef VADA_DATALOG_PLANNER_H_
#define VADA_DATALOG_PLANNER_H_

#include <cstddef>
#include <vector>

#include "datalog/ast.h"

namespace vada::datalog {

class Database;

/// Join-planning knobs of the evaluator (DESIGN.md §5f). The defaults
/// are the fast path; `{.indexes = false, .reorder = false}` is the
/// reference oracle the differential fuzz harness compares against:
/// body literals keep the legacy bind-aware order and every atom is
/// resolved by scanning the full relation.
///
/// Both knobs are *output-preserving up to row order*: the set of
/// derived facts is identical at any setting (and `indexes` alone never
/// changes row order either — index buckets keep insertion order, so
/// probing enumerates the same facts in the same order a scan would).
struct PlannerOptions {
  /// Probe lazy per-(predicate, bound-position-set) hash indexes for the
  /// bound prefix of each body atom instead of scanning candidates.
  /// false: atoms are resolved by full scans (the oracle path).
  bool indexes = true;
  /// Reorder body literals greedily by estimated selectivity — bound
  /// positions, relation cardinality, constants first — instead of the
  /// legacy bound-count heuristic. Negations, comparisons and
  /// assignments are hoisted as early as their variables allow in both
  /// modes.
  bool reorder = true;
  /// Relations with fewer facts than this are scanned rather than
  /// indexed: building a hash table over a handful of tuples costs more
  /// than the scan it would save (deltas of semi-naive rounds are
  /// usually below this).
  size_t min_index_size = 32;
};

/// Per-literal record of one planning decision, in execution order.
/// Feeds EXPLAIN (datalog/explain.h); zero-cost when not requested.
struct LiteralPlan {
  size_t body_index = 0;      ///< position in the rule's declared body
  /// The candidate-count estimate at placement time: positive atoms get
  /// EstimatedCost (cardinality shrunk per bound position); hoisted
  /// builtins/negations cost 0. Meaningful only in cost-based mode —
  /// the legacy heuristic never computes costs and records 0.
  size_t estimated_cost = 0;
  size_t bound_terms = 0;     ///< ground terms at placement time
};

/// Returns the execution order of `rule`'s body as indexes into
/// `rule.body`. Greedy: at every step, ready negations / comparisons /
/// assignments (all their variables bound) are hoisted first; then the
/// cheapest positive atom is chosen —
///  * with `options.reorder` and a non-null `db`: smallest estimated
///    candidate count, `FactCount` shrunk per bound position (constants
///    and variables bound by already-placed literals); ties prefer more
///    bound positions, then declared order;
///  * otherwise (legacy heuristic, the oracle): most bound terms, ties
///    by declared order.
/// When `plan` is non-null it receives one LiteralPlan per body literal,
/// parallel to the returned order.
/// Exposed for the planner unit tests; the evaluator calls it per rule
/// at stratum-compile time with the stratum-start database.
std::vector<size_t> PlanBodyOrder(const Rule& rule, const Database* db,
                                  const PlannerOptions& options,
                                  std::vector<LiteralPlan>* plan = nullptr);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_PLANNER_H_
