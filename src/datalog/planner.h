#ifndef VADA_DATALOG_PLANNER_H_
#define VADA_DATALOG_PLANNER_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datalog/ast.h"

namespace vada::datalog {

class Database;

/// Join-planning knobs of the evaluator (DESIGN.md §5f). The defaults
/// are the fast path; `{.indexes = false, .reorder = false}` is the
/// reference oracle the differential fuzz harness compares against:
/// body literals keep the legacy bind-aware order and every atom is
/// resolved by scanning the full relation.
///
/// Both knobs are *output-preserving up to row order*: the set of
/// derived facts is identical at any setting (and `indexes` alone never
/// changes row order either — index buckets keep insertion order, so
/// probing enumerates the same facts in the same order a scan would).
struct PlannerOptions {
  /// Probe lazy per-(predicate, bound-position-set) hash indexes for the
  /// bound prefix of each body atom instead of scanning candidates.
  /// false: atoms are resolved by full scans (the oracle path).
  bool indexes = true;
  /// Reorder body literals greedily by estimated selectivity — bound
  /// positions, relation cardinality, constants first — instead of the
  /// legacy bound-count heuristic. Negations, comparisons and
  /// assignments are hoisted as early as their variables allow in both
  /// modes.
  bool reorder = true;
  /// Relations with fewer facts than this are scanned rather than
  /// indexed: building a hash table over a handful of tuples costs more
  /// than the scan it would save (deltas of semi-naive rounds are
  /// usually below this).
  size_t min_index_size = 32;
  /// Run the dataflow ProgramOptimizer (constant folding, dead/
  /// unreachable-rule elimination, magic-set specialization toward the
  /// query goal) before evaluation, and seed `priors` from the static
  /// cardinality analysis. Goal-visible output is preserved bit-for-bit;
  /// facts of predicates the goal does not need may no longer be
  /// derived, which is why this is opt-in.
  bool optimize = false;
  /// Static cardinality upper bounds (predicate -> max distinct facts)
  /// from the dataflow analysis. Consulted by EstimatedCost only for
  /// predicates with no facts yet — typically IDB predicates at
  /// stratum-compile time, where the runtime count is always 0 and the
  /// planner would otherwise treat every recursive atom as free.
  std::shared_ptr<const std::map<std::string, size_t>> priors = nullptr;
};

/// Per-literal record of one planning decision, in execution order.
/// Feeds EXPLAIN (datalog/explain.h); zero-cost when not requested.
struct LiteralPlan {
  size_t body_index = 0;      ///< position in the rule's declared body
  /// The candidate-count estimate at placement time: positive atoms get
  /// EstimatedCost (cardinality shrunk per bound position); hoisted
  /// builtins/negations cost 0. Meaningful only in cost-based mode —
  /// the legacy heuristic never computes costs and records 0.
  size_t estimated_cost = 0;
  size_t bound_terms = 0;     ///< ground terms at placement time
  /// The static cardinality prior that stood in for the (zero) runtime
  /// fact count when estimating this literal, 0 when runtime stats were
  /// used. Lets EXPLAIN show where a plan rests on inference rather
  /// than observation.
  size_t static_prior = 0;
};

/// Returns the execution order of `rule`'s body as indexes into
/// `rule.body`. Greedy: at every step, ready negations / comparisons /
/// assignments (all their variables bound) are hoisted first; then the
/// cheapest positive atom is chosen —
///  * with `options.reorder` and a non-null `db`: smallest estimated
///    candidate count, `FactCount` shrunk per bound position (constants
///    and variables bound by already-placed literals); ties prefer more
///    bound positions, then declared order;
///  * otherwise (legacy heuristic, the oracle): most bound terms, ties
///    by declared order.
/// When `plan` is non-null it receives one LiteralPlan per body literal,
/// parallel to the returned order.
/// Exposed for the planner unit tests; the evaluator calls it per rule
/// at stratum-compile time with the stratum-start database.
std::vector<size_t> PlanBodyOrder(const Rule& rule, const Database* db,
                                  const PlannerOptions& options,
                                  std::vector<LiteralPlan>* plan = nullptr);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_PLANNER_H_
