#include "datalog/explain.h"

#include <cstdio>

#include "obs/json.h"

namespace vada::datalog {

namespace {

std::string FmtMillis(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string JoinPositions(const std::vector<size_t>& positions) {
  std::string out;
  for (size_t p : positions) {
    if (!out.empty()) out += ",";
    out += std::to_string(p);
  }
  return out;
}

}  // namespace

LiteralRuntime PlanExplain::Totals() const {
  LiteralRuntime total;
  for (const StratumExplain& stratum : strata) {
    for (const RuleExplain& rule : stratum.rules) {
      for (const LiteralExplain& lit : rule.literals) total.Add(lit.actual);
    }
  }
  return total;
}

std::string PlanExplain::ToText() const {
  std::string out = analyzed ? "plan (analyzed)\n" : "plan\n";
  for (size_t s = 0; s < strata.size(); ++s) {
    const StratumExplain& stratum = strata[s];
    out += "  stratum " + std::to_string(s) + ":";
    for (const std::string& p : stratum.predicates) out += " " + p;
    out += "\n";
    for (const RuleExplain& rule : stratum.rules) {
      out += "    rule " + rule.text;
      if (rule.aggregate) out += "  [aggregate]";
      if (analyzed) {
        out += "  (applications=" + std::to_string(rule.applications) +
               " facts=" + std::to_string(rule.facts_derived) + ")";
      }
      out += "\n";
      for (const LiteralExplain& lit : rule.literals) {
        out += "      [" + std::to_string(lit.body_index) + "] " + lit.kind +
               " " + lit.text + "  access=" + lit.access;
        if (lit.kind == "atom") {
          out += " est=" + std::to_string(lit.estimated_cost);
          if (lit.static_prior > 0) {
            out += " prior=" + std::to_string(lit.static_prior);
          }
          if (!lit.bound_positions.empty()) {
            out += " bound=[" + JoinPositions(lit.bound_positions) + "]";
          }
        }
        if (analyzed) {
          out += "  | scans=" + std::to_string(lit.actual.scan_probes) +
                 " probes=" + std::to_string(lit.actual.index_probes) +
                 " candidates=" +
                 std::to_string(lit.actual.index_candidates) + " time=" +
                 FmtMillis(lit.actual.time_ns);
        }
        out += "\n";
      }
    }
  }
  if (analyzed) {
    LiteralRuntime total = Totals();
    out += "  totals: scans=" + std::to_string(total.scan_probes) +
           " probes=" + std::to_string(total.index_probes) + " candidates=" +
           std::to_string(total.index_candidates) + "\n";
  }
  return out;
}

std::string PlanExplain::ToJson() const {
  std::string out = "{\"analyzed\":";
  out += analyzed ? "true" : "false";
  out += ",\"strata\":[";
  for (size_t s = 0; s < strata.size(); ++s) {
    const StratumExplain& stratum = strata[s];
    if (s > 0) out += ",";
    out += "{\"predicates\":[";
    for (size_t p = 0; p < stratum.predicates.size(); ++p) {
      if (p > 0) out += ",";
      out += "\"" + obs::JsonEscape(stratum.predicates[p]) + "\"";
    }
    out += "],\"rules\":[";
    for (size_t r = 0; r < stratum.rules.size(); ++r) {
      const RuleExplain& rule = stratum.rules[r];
      if (r > 0) out += ",";
      out += "{\"text\":\"" + obs::JsonEscape(rule.text) + "\"";
      out += ",\"aggregate\":";
      out += rule.aggregate ? "true" : "false";
      if (analyzed) {
        out += ",\"applications\":" + std::to_string(rule.applications);
        out += ",\"facts_derived\":" + std::to_string(rule.facts_derived);
      }
      out += ",\"literals\":[";
      for (size_t l = 0; l < rule.literals.size(); ++l) {
        const LiteralExplain& lit = rule.literals[l];
        if (l > 0) out += ",";
        out += "{\"body_index\":" + std::to_string(lit.body_index);
        out += ",\"kind\":\"" + obs::JsonEscape(lit.kind) + "\"";
        out += ",\"text\":\"" + obs::JsonEscape(lit.text) + "\"";
        out += ",\"access\":\"" + obs::JsonEscape(lit.access) + "\"";
        out += ",\"estimated_cost\":" + std::to_string(lit.estimated_cost);
        out += ",\"static_prior\":" + std::to_string(lit.static_prior);
        out += ",\"bound_positions\":[" ;
        for (size_t b = 0; b < lit.bound_positions.size(); ++b) {
          if (b > 0) out += ",";
          out += std::to_string(lit.bound_positions[b]);
        }
        out += "]";
        if (analyzed) {
          out += ",\"scan_probes\":" + std::to_string(lit.actual.scan_probes);
          out += ",\"index_probes\":" +
                 std::to_string(lit.actual.index_probes);
          out += ",\"index_candidates\":" +
                 std::to_string(lit.actual.index_candidates);
          out += ",\"time_ns\":" + std::to_string(lit.actual.time_ns);
        }
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]";
  if (analyzed) {
    LiteralRuntime total = Totals();
    out += ",\"totals\":{\"scan_probes\":" +
           std::to_string(total.scan_probes) +
           ",\"index_probes\":" + std::to_string(total.index_probes) +
           ",\"index_candidates\":" +
           std::to_string(total.index_candidates) + "}";
  }
  out += "}";
  return out;
}

}  // namespace vada::datalog
