#include "datalog/database.h"

#include <utility>

namespace vada::datalog {

namespace {
const std::vector<Tuple>& EmptyFacts() {
  static const std::vector<Tuple>* empty = new std::vector<Tuple>();
  return *empty;
}
}  // namespace

const Database::PredicateStore* Database::Find(
    const std::string& predicate) const {
  auto it = stores_.find(predicate);
  if (it != stores_.end()) return &it->second;
  auto sit = shared_.find(predicate);
  if (sit != shared_.end()) return sit->second.store;
  return nullptr;
}

bool Database::Insert(const std::string& predicate, Tuple t) {
  if (!shared_.empty()) {
    auto sit = shared_.find(predicate);
    if (sit != shared_.end() && stores_.count(predicate) == 0) {
      // Copy-on-write: detach the borrowed predicate before mutating.
      stores_[predicate] = *sit->second.store;
      shared_.erase(sit);
    }
  }
  PredicateStore& store = stores_[predicate];
  if (!store.arity_set) {
    store.arity = t.size();
    store.arity_set = true;
    store.indexes.resize(store.arity);
  } else if (t.size() != store.arity) {
    return false;
  }
  auto [it, added] = store.set.insert(t);
  if (!added) return false;
  size_t idx = store.facts.size();
  for (size_t pos = 0; pos < store.arity; ++pos) {
    store.indexes[pos][t.at(pos)].push_back(idx);
  }
  store.facts.push_back(std::move(t));
  return true;
}

void Database::LoadRelation(const Relation& relation) {
  for (const Tuple& row : relation.rows()) {
    Insert(relation.name(), row);
  }
}

void Database::AttachShared(std::shared_ptr<const Database> base) {
  if (base == nullptr) return;
  for (const auto& [name, store] : base->stores_) {
    if (stores_.count(name) > 0 || shared_.count(name) > 0) continue;
    shared_[name] = SharedView{base, &store};
  }
  // If the snapshot itself borrows predicates, forward the inner owner
  // so lifetime tracking stays precise.
  for (const auto& [name, view] : base->shared_) {
    if (stores_.count(name) > 0 || shared_.count(name) > 0) continue;
    shared_[name] = view;
  }
}

bool Database::Contains(const std::string& predicate, const Tuple& t) const {
  const PredicateStore* store = Find(predicate);
  return store != nullptr && store->set.count(t) > 0;
}

const std::vector<Tuple>& Database::facts(const std::string& predicate) const {
  const PredicateStore* store = Find(predicate);
  if (store == nullptr) return EmptyFacts();
  return store->facts;
}

const std::vector<size_t>* Database::Lookup(const std::string& predicate,
                                            size_t position,
                                            const Value& value) const {
  const PredicateStore* store = Find(predicate);
  if (store == nullptr) return nullptr;
  if (position >= store->indexes.size()) return nullptr;
  auto vit = store->indexes[position].find(value);
  if (vit == store->indexes[position].end()) return nullptr;
  return &vit->second;
}

size_t Database::FactCount(const std::string& predicate) const {
  const PredicateStore* store = Find(predicate);
  return store == nullptr ? 0 : store->facts.size();
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [name, store] : stores_) total += store.facts.size();
  for (const auto& [name, view] : shared_) total += view.store->facts.size();
  return total;
}

std::vector<std::string> Database::Predicates() const {
  std::vector<std::string> out;
  out.reserve(stores_.size() + shared_.size());
  // Merge of two sorted key ranges keeps the documented sorted order.
  auto own = stores_.begin();
  auto borrowed = shared_.begin();
  while (own != stores_.end() || borrowed != shared_.end()) {
    if (borrowed == shared_.end() ||
        (own != stores_.end() && own->first < borrowed->first)) {
      out.push_back(own->first);
      ++own;
    } else {
      out.push_back(borrowed->first);
      ++borrowed;
    }
  }
  return out;
}

void Database::Clear() {
  stores_.clear();
  shared_.clear();
}

}  // namespace vada::datalog
