#include "datalog/database.h"

#include <algorithm>
#include <utility>

namespace vada::datalog {
namespace {

/// Approximate heap bytes of one unordered_map from a POD key to a
/// row-index posting vector (the dedup table and the eager per-column
/// indexes share this shape): node overhead, key/value pair, and each
/// posting vector's payload.
template <typename Map>
size_t MapApproxBytes(const Map& map) {
  size_t bytes = map.bucket_count() * sizeof(void*);
  for (const auto& [key, postings] : map) {
    bytes += sizeof(key) + sizeof(postings) + 2 * sizeof(void*);
    bytes += postings.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace

size_t Database::View::rows() const {
  return static_cast<const PredicateStore*>(store_)->rows;
}

size_t Database::View::arity() const {
  return static_cast<const PredicateStore*>(store_)->arity;
}

const SymbolId* Database::View::column(size_t pos) const {
  return static_cast<const PredicateStore*>(store_)->columns[pos].data();
}

const std::vector<uint32_t>* Database::View::LookupId(size_t position,
                                                      SymbolId id) const {
  const auto* store = static_cast<const PredicateStore*>(store_);
  if (position >= store->indexes.size()) return nullptr;
  auto it = store->indexes[position].find(id);
  if (it == store->indexes[position].end()) return nullptr;
  return &it->second;
}

bool Database::View::ContainsIds(const SymbolId* ids) const {
  const auto* store = static_cast<const PredicateStore*>(store_);
  auto it = store->dedup.find(RowHash(ids, store->arity));
  if (it == store->dedup.end()) return false;
  for (uint32_t row : it->second) {
    if (store->RowEquals(row, ids)) return true;
  }
  return false;
}

Database::Database() : index_cache_(std::make_unique<IndexCache>()) {}

Database::Database(const Database& other)
    : stores_(other.stores_),
      shared_(other.shared_),
      index_cache_(std::make_unique<IndexCache>()) {}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  stores_ = other.stores_;
  shared_ = other.shared_;
  index_cache_ = std::make_unique<IndexCache>();
  return *this;
}

const Database::PredicateStore* Database::Find(
    const std::string& predicate) const {
  auto it = stores_.find(predicate);
  if (it != stores_.end()) return &it->second;
  auto sit = shared_.find(predicate);
  if (sit != shared_.end()) return sit->second.store;
  return nullptr;
}

bool Database::Insert(const std::string& predicate, const Tuple& t) {
  SymbolTable& table = SymbolTable::Global();
  SymbolId local[8];
  std::vector<SymbolId> heap;
  SymbolId* ids = local;
  if (t.size() > 8) {
    heap.resize(t.size());
    ids = heap.data();
  }
  for (size_t i = 0; i < t.size(); ++i) ids[i] = table.Intern(t.at(i));
  return InsertIds(predicate, ids, t.size());
}

bool Database::InsertIds(const std::string& predicate, const SymbolId* ids,
                         size_t n) {
  if (!shared_.empty()) {
    auto sit = shared_.find(predicate);
    if (sit != shared_.end() && stores_.count(predicate) == 0) {
      // Copy-on-write: detach the borrowed predicate before mutating.
      // Columnar detach copies flat id vectors — no string traffic.
      stores_[predicate] = *sit->second.store;
      shared_.erase(sit);
    }
  }
  PredicateStore& store = stores_[predicate];
  if (!store.arity_set) {
    store.arity = n;
    store.arity_set = true;
    store.columns.resize(n);
    store.indexes.resize(n);
  } else if (n != store.arity) {
    return false;
  }
  uint64_t hash = RowHash(ids, n);
  std::vector<uint32_t>& chain = store.dedup[hash];
  for (uint32_t row : chain) {
    if (store.RowEquals(row, ids)) return false;
  }
  uint32_t row = static_cast<uint32_t>(store.rows);
  for (size_t pos = 0; pos < n; ++pos) {
    store.columns[pos].push_back(ids[pos]);
    store.indexes[pos][ids[pos]].push_back(row);
  }
  chain.push_back(row);
  ++store.rows;
  // Composite indexes over this predicate are stale now; they rebuild
  // lazily on the next probe. (A moved-from database has no cache.)
  if (index_cache_ != nullptr) {
    MutexLock lock(index_cache_->mutex);
    if (!index_cache_->entries.empty()) index_cache_->entries.erase(predicate);
  }
  return true;
}

const BoundIndex* Database::EnsureBoundIndex(
    const std::string& predicate, const std::vector<size_t>& positions,
    size_t* built) const {
  if (positions.empty()) return nullptr;
  auto it = stores_.find(predicate);
  if (it == stores_.end()) {
    // Borrowed predicates index on the owning snapshot, so every
    // borrower of one shared snapshot shares one index.
    auto sit = shared_.find(predicate);
    if (sit == shared_.end()) return nullptr;
    return sit->second.owner->EnsureBoundIndex(predicate, positions, built);
  }
  const PredicateStore& store = it->second;
  for (size_t pos : positions) {
    if (pos >= store.arity) return nullptr;
  }
  if (index_cache_ == nullptr) return nullptr;  // moved-from; defensive
  MutexLock lock(index_cache_->mutex);
  auto& per_predicate = index_cache_->entries[predicate];
  auto iit = per_predicate.find(positions);
  if (iit == per_predicate.end()) {
    BoundIndex index;
    index.buckets.reserve(store.rows);
    std::vector<SymbolId> key(positions.size());
    for (size_t row = 0; row < store.rows; ++row) {
      for (size_t k = 0; k < positions.size(); ++k) {
        key[k] = store.columns[positions[k]][row];
      }
      index.buckets[key].push_back(static_cast<uint32_t>(row));
    }
    size_t bytes = sizeof(BoundIndex) +
                   index.buckets.bucket_count() * sizeof(void*);
    for (const auto& [bucket_key, postings] : index.buckets) {
      bytes += sizeof(bucket_key) + bucket_key.capacity() * sizeof(SymbolId) +
               sizeof(postings) + postings.capacity() * sizeof(uint32_t) +
               2 * sizeof(void*);
    }
    index.approx_bytes = bytes;
    iit = per_predicate.emplace(positions, std::move(index)).first;
    if (built != nullptr) ++*built;
  }
  return &iit->second;
}

size_t Database::ApproxBytes(const std::string& predicate) const {
  auto it = stores_.find(predicate);
  if (it == stores_.end()) return 0;
  const PredicateStore& store = it->second;
  size_t bytes = sizeof(PredicateStore);
  for (const auto& column : store.columns) {
    bytes += column.capacity() * sizeof(SymbolId);
  }
  bytes += MapApproxBytes(store.dedup);
  for (const auto& index : store.indexes) bytes += MapApproxBytes(index);
  return bytes;
}

size_t Database::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [name, store] : stores_) bytes += ApproxBytes(name);
  return bytes;
}

size_t Database::IndexBytes() const {
  if (index_cache_ == nullptr) return 0;
  MutexLock lock(index_cache_->mutex);
  size_t bytes = 0;
  for (const auto& [predicate, per_predicate] : index_cache_->entries) {
    for (const auto& [positions, index] : per_predicate) {
      bytes += index.approx_bytes;
    }
  }
  return bytes;
}

void Database::LoadRelation(const Relation& relation) {
  for (const Tuple& row : relation.rows()) {
    Insert(relation.name(), row);
  }
}

void Database::AttachShared(std::shared_ptr<const Database> base) {
  if (base == nullptr) return;
  for (const auto& [name, store] : base->stores_) {
    if (stores_.count(name) > 0 || shared_.count(name) > 0) continue;
    shared_[name] = SharedView{base, &store};
  }
  // If the snapshot itself borrows predicates, forward the inner owner
  // so lifetime tracking stays precise.
  for (const auto& [name, view] : base->shared_) {
    if (stores_.count(name) > 0 || shared_.count(name) > 0) continue;
    shared_[name] = view;
  }
}

bool Database::Contains(const std::string& predicate, const Tuple& t) const {
  const PredicateStore* store = Find(predicate);
  if (store == nullptr || !store->arity_set || store->arity != t.size()) {
    return false;
  }
  // Find, not Intern: a Value nobody ever interned cannot be stored
  // anywhere, and containment checks must not grow the global table.
  SymbolTable& table = SymbolTable::Global();
  SymbolId local[8];
  std::vector<SymbolId> heap;
  SymbolId* ids = local;
  if (t.size() > 8) {
    heap.resize(t.size());
    ids = heap.data();
  }
  for (size_t i = 0; i < t.size(); ++i) {
    std::optional<SymbolId> id = table.Find(t.at(i));
    if (!id.has_value()) return false;
    ids[i] = *id;
  }
  return View(store).ContainsIds(ids);
}

std::vector<Tuple> Database::facts(const std::string& predicate) const {
  std::vector<Tuple> out;
  const PredicateStore* store = Find(predicate);
  if (store == nullptr) return out;
  const SymbolTable& table = SymbolTable::Global();
  out.reserve(store->rows);
  std::vector<Value> values(store->arity);
  for (size_t row = 0; row < store->rows; ++row) {
    for (size_t pos = 0; pos < store->arity; ++pos) {
      values[pos] = table.value(store->columns[pos][row]);
    }
    out.emplace_back(values);
  }
  return out;
}

Database::View Database::view(const std::string& predicate) const {
  return View(Find(predicate));
}

size_t Database::FactCount(const std::string& predicate) const {
  const PredicateStore* store = Find(predicate);
  return store == nullptr ? 0 : store->rows;
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [name, store] : stores_) total += store.rows;
  for (const auto& [name, view] : shared_) total += view.store->rows;
  return total;
}

std::vector<std::string> Database::Predicates() const {
  std::vector<std::string> out;
  out.reserve(stores_.size() + shared_.size());
  // Merge of two sorted key ranges keeps the documented sorted order.
  auto own = stores_.begin();
  auto borrowed = shared_.begin();
  while (own != stores_.end() || borrowed != shared_.end()) {
    if (borrowed == shared_.end() ||
        (own != stores_.end() && own->first < borrowed->first)) {
      out.push_back(own->first);
      ++own;
    } else {
      out.push_back(borrowed->first);
      ++borrowed;
    }
  }
  return out;
}

void Database::ResetPredicate(const std::string& predicate) {
  stores_.erase(predicate);
  shared_.erase(predicate);
  if (index_cache_ != nullptr) {
    MutexLock lock(index_cache_->mutex);
    if (!index_cache_->entries.empty()) index_cache_->entries.erase(predicate);
  }
}

void Database::Clear() {
  stores_.clear();
  shared_.clear();
  if (index_cache_ != nullptr) {
    MutexLock lock(index_cache_->mutex);
    index_cache_->entries.clear();
  }
}

}  // namespace vada::datalog
