#include "datalog/database.h"

namespace vada::datalog {

namespace {
const std::vector<Tuple>& EmptyFacts() {
  static const std::vector<Tuple>* empty = new std::vector<Tuple>();
  return *empty;
}
}  // namespace

bool Database::Insert(const std::string& predicate, Tuple t) {
  PredicateStore& store = stores_[predicate];
  if (!store.arity_set) {
    store.arity = t.size();
    store.arity_set = true;
    store.indexes.resize(store.arity);
  } else if (t.size() != store.arity) {
    return false;
  }
  auto [it, added] = store.set.insert(t);
  if (!added) return false;
  size_t idx = store.facts.size();
  for (size_t pos = 0; pos < store.arity; ++pos) {
    store.indexes[pos][t.at(pos)].push_back(idx);
  }
  store.facts.push_back(std::move(t));
  return true;
}

void Database::LoadRelation(const Relation& relation) {
  for (const Tuple& row : relation.rows()) {
    Insert(relation.name(), row);
  }
}

bool Database::Contains(const std::string& predicate, const Tuple& t) const {
  auto it = stores_.find(predicate);
  return it != stores_.end() && it->second.set.count(t) > 0;
}

const std::vector<Tuple>& Database::facts(const std::string& predicate) const {
  auto it = stores_.find(predicate);
  if (it == stores_.end()) return EmptyFacts();
  return it->second.facts;
}

const std::vector<size_t>* Database::Lookup(const std::string& predicate,
                                            size_t position,
                                            const Value& value) const {
  auto it = stores_.find(predicate);
  if (it == stores_.end()) return nullptr;
  const PredicateStore& store = it->second;
  if (position >= store.indexes.size()) return nullptr;
  auto vit = store.indexes[position].find(value);
  if (vit == store.indexes[position].end()) return nullptr;
  return &vit->second;
}

size_t Database::FactCount(const std::string& predicate) const {
  auto it = stores_.find(predicate);
  return it == stores_.end() ? 0 : it->second.facts.size();
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [name, store] : stores_) total += store.facts.size();
  return total;
}

std::vector<std::string> Database::Predicates() const {
  std::vector<std::string> out;
  out.reserve(stores_.size());
  for (const auto& [name, store] : stores_) out.push_back(name);
  return out;
}

void Database::Clear() { stores_.clear(); }

}  // namespace vada::datalog
