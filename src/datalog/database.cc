#include "datalog/database.h"

#include <utility>

namespace vada::datalog {

namespace {
const std::vector<Tuple>& EmptyFacts() {
  static const std::vector<Tuple>* empty = new std::vector<Tuple>();
  return *empty;
}

size_t PostingListBytes(const std::vector<size_t>& postings) {
  return sizeof(postings) + postings.capacity() * sizeof(size_t);
}
}  // namespace

Database::Database() : index_cache_(std::make_unique<IndexCache>()) {}

Database::Database(const Database& other)
    : stores_(other.stores_),
      shared_(other.shared_),
      index_cache_(std::make_unique<IndexCache>()) {}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  stores_ = other.stores_;
  shared_ = other.shared_;
  index_cache_ = std::make_unique<IndexCache>();
  return *this;
}

const Database::PredicateStore* Database::Find(
    const std::string& predicate) const {
  auto it = stores_.find(predicate);
  if (it != stores_.end()) return &it->second;
  auto sit = shared_.find(predicate);
  if (sit != shared_.end()) return sit->second.store;
  return nullptr;
}

bool Database::Insert(const std::string& predicate, Tuple t) {
  if (!shared_.empty()) {
    auto sit = shared_.find(predicate);
    if (sit != shared_.end() && stores_.count(predicate) == 0) {
      // Copy-on-write: detach the borrowed predicate before mutating.
      stores_[predicate] = *sit->second.store;
      shared_.erase(sit);
    }
  }
  PredicateStore& store = stores_[predicate];
  if (!store.arity_set) {
    store.arity = t.size();
    store.arity_set = true;
    store.indexes.resize(store.arity);
  } else if (t.size() != store.arity) {
    return false;
  }
  auto [it, added] = store.set.insert(t);
  if (!added) return false;
  size_t idx = store.facts.size();
  for (size_t pos = 0; pos < store.arity; ++pos) {
    store.indexes[pos][t.at(pos)].push_back(idx);
  }
  store.facts.push_back(std::move(t));
  // Composite indexes over this predicate are stale now; they rebuild
  // lazily on the next probe. (A moved-from database has no cache.)
  if (index_cache_ != nullptr) {
    MutexLock lock(index_cache_->mutex);
    if (!index_cache_->entries.empty()) index_cache_->entries.erase(predicate);
  }
  return true;
}

const BoundIndex* Database::EnsureBoundIndex(
    const std::string& predicate, const std::vector<size_t>& positions,
    size_t* built) const {
  if (positions.empty()) return nullptr;
  auto it = stores_.find(predicate);
  if (it == stores_.end()) {
    // Borrowed predicates index on the owning snapshot, so every
    // borrower of one shared snapshot shares one index.
    auto sit = shared_.find(predicate);
    if (sit == shared_.end()) return nullptr;
    return sit->second.owner->EnsureBoundIndex(predicate, positions, built);
  }
  const PredicateStore& store = it->second;
  for (size_t pos : positions) {
    if (pos >= store.arity) return nullptr;
  }
  if (index_cache_ == nullptr) return nullptr;  // moved-from; defensive
  MutexLock lock(index_cache_->mutex);
  auto& per_predicate = index_cache_->entries[predicate];
  auto iit = per_predicate.find(positions);
  if (iit == per_predicate.end()) {
    BoundIndex index;
    index.buckets.reserve(store.facts.size());
    for (size_t i = 0; i < store.facts.size(); ++i) {
      std::vector<Value> key;
      key.reserve(positions.size());
      for (size_t pos : positions) key.push_back(store.facts[i].at(pos));
      index.buckets[Tuple(std::move(key))].push_back(i);
    }
    size_t bytes = sizeof(BoundIndex) +
                   index.buckets.bucket_count() * sizeof(void*);
    for (const auto& [key, postings] : index.buckets) {
      bytes += key.ApproxBytes() + PostingListBytes(postings);
    }
    index.approx_bytes = bytes;
    iit = per_predicate.emplace(positions, std::move(index)).first;
    if (built != nullptr) ++*built;
  }
  return &iit->second;
}

size_t Database::ApproxBytes(const std::string& predicate) const {
  auto it = stores_.find(predicate);
  if (it == stores_.end()) return 0;
  const PredicateStore& store = it->second;
  size_t bytes = sizeof(PredicateStore);
  for (const Tuple& t : store.facts) bytes += t.ApproxBytes();
  for (const Tuple& t : store.set) bytes += t.ApproxBytes();
  bytes += store.set.bucket_count() * sizeof(void*);
  for (const auto& column : store.indexes) {
    bytes += column.bucket_count() * sizeof(void*);
    for (const auto& [value, postings] : column) {
      bytes += value.ApproxBytes() + PostingListBytes(postings);
    }
  }
  return bytes;
}

size_t Database::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [name, store] : stores_) bytes += ApproxBytes(name);
  return bytes;
}

size_t Database::IndexBytes() const {
  if (index_cache_ == nullptr) return 0;
  MutexLock lock(index_cache_->mutex);
  size_t bytes = 0;
  for (const auto& [predicate, per_predicate] : index_cache_->entries) {
    for (const auto& [positions, index] : per_predicate) {
      bytes += index.approx_bytes;
    }
  }
  return bytes;
}

void Database::LoadRelation(const Relation& relation) {
  for (const Tuple& row : relation.rows()) {
    Insert(relation.name(), row);
  }
}

void Database::AttachShared(std::shared_ptr<const Database> base) {
  if (base == nullptr) return;
  for (const auto& [name, store] : base->stores_) {
    if (stores_.count(name) > 0 || shared_.count(name) > 0) continue;
    shared_[name] = SharedView{base, &store};
  }
  // If the snapshot itself borrows predicates, forward the inner owner
  // so lifetime tracking stays precise.
  for (const auto& [name, view] : base->shared_) {
    if (stores_.count(name) > 0 || shared_.count(name) > 0) continue;
    shared_[name] = view;
  }
}

bool Database::Contains(const std::string& predicate, const Tuple& t) const {
  const PredicateStore* store = Find(predicate);
  return store != nullptr && store->set.count(t) > 0;
}

const std::vector<Tuple>& Database::facts(const std::string& predicate) const {
  const PredicateStore* store = Find(predicate);
  if (store == nullptr) return EmptyFacts();
  return store->facts;
}

const std::vector<size_t>* Database::Lookup(const std::string& predicate,
                                            size_t position,
                                            const Value& value) const {
  const PredicateStore* store = Find(predicate);
  if (store == nullptr) return nullptr;
  if (position >= store->indexes.size()) return nullptr;
  auto vit = store->indexes[position].find(value);
  if (vit == store->indexes[position].end()) return nullptr;
  return &vit->second;
}

size_t Database::FactCount(const std::string& predicate) const {
  const PredicateStore* store = Find(predicate);
  return store == nullptr ? 0 : store->facts.size();
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [name, store] : stores_) total += store.facts.size();
  for (const auto& [name, view] : shared_) total += view.store->facts.size();
  return total;
}

std::vector<std::string> Database::Predicates() const {
  std::vector<std::string> out;
  out.reserve(stores_.size() + shared_.size());
  // Merge of two sorted key ranges keeps the documented sorted order.
  auto own = stores_.begin();
  auto borrowed = shared_.begin();
  while (own != stores_.end() || borrowed != shared_.end()) {
    if (borrowed == shared_.end() ||
        (own != stores_.end() && own->first < borrowed->first)) {
      out.push_back(own->first);
      ++own;
    } else {
      out.push_back(borrowed->first);
      ++borrowed;
    }
  }
  return out;
}

void Database::Clear() {
  stores_.clear();
  shared_.clear();
  if (index_cache_ != nullptr) {
    MutexLock lock(index_cache_->mutex);
    index_cache_->entries.clear();
  }
}

}  // namespace vada::datalog
