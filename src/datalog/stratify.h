#ifndef VADA_DATALOG_STRATIFY_H_
#define VADA_DATALOG_STRATIFY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace vada::datalog {

/// Result of stratifying a program: strata of IDB predicates, lowest
/// first. Predicates without rules (EDB) are not listed; they are
/// implicitly below every stratum.
struct Stratification {
  /// stratum index -> predicates evaluated together (one SCC-group).
  std::vector<std::vector<std::string>> strata;
  /// predicate -> stratum index.
  std::map<std::string, int> stratum_of;
};

/// Computes a stratification of `program`.
///
/// Edges: every body predicate of a rule points to the head predicate.
/// Negated body atoms — and *all* body atoms of a rule whose head carries
/// aggregates — induce strict edges. Fails with kInvalidArgument when a
/// strict edge lies inside a cycle (non-stratifiable negation/aggregation);
/// the error message names the offending predicate cycle as a path
/// "p -> q -> ... -> p", and when `negative_cycle` is non-null it receives
/// that same path (first element repeated last) for structured reporting —
/// the datalog/analysis ProgramAnalyzer anchors its stratification
/// diagnostics to it.
Result<Stratification> Stratify(const Program& program,
                                std::vector<std::string>* negative_cycle =
                                    nullptr);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_STRATIFY_H_
