#ifndef VADA_DATALOG_STRATIFY_H_
#define VADA_DATALOG_STRATIFY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"

namespace vada::datalog {

/// Result of stratifying a program: strata of IDB predicates, lowest
/// first. Predicates without rules (EDB) are not listed; they are
/// implicitly below every stratum.
struct Stratification {
  /// stratum index -> predicates evaluated together (one SCC-group).
  std::vector<std::vector<std::string>> strata;
  /// predicate -> stratum index.
  std::map<std::string, int> stratum_of;
};

/// Computes a stratification of `program`.
///
/// Edges: every body predicate of a rule points to the head predicate.
/// Negated body atoms — and *all* body atoms of a rule whose head carries
/// aggregates — induce strict edges. Fails with kInvalidArgument when a
/// strict edge lies inside a cycle (non-stratifiable negation/aggregation).
Result<Stratification> Stratify(const Program& program);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_STRATIFY_H_
