#ifndef VADA_DATALOG_KB_ADAPTER_H_
#define VADA_DATALOG_KB_ADAPTER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/snapshot_cache.h"
#include "kb/knowledge_base.h"

namespace vada::datalog {

/// Loads every relation of `kb` into `db` (predicate name = relation
/// name). The knowledge base stays the source of truth; the database is
/// a per-evaluation scratch copy, which keeps the reasoner free of
/// mutation hazards against concurrently updated relations.
void LoadKnowledgeBase(const KnowledgeBase& kb, Database* db);

/// Loads only the relations `program` actually reads: body-atom
/// predicates that are not themselves derived by the program. Dependency
/// checks and Vadalog transducers run hundreds of times per wrangle, so
/// each evaluation stays proportional to the data it touches instead of
/// the whole knowledge base. With a non-null `cache`, relations are
/// borrowed as shared version-keyed snapshots (see SnapshotCache) —
/// zero copying when the relation has not changed since the last scan —
/// instead of row-by-row copies into `db`.
void LoadReferencedRelations(const Program& program, const KnowledgeBase& kb,
                             Database* db, SnapshotCache* cache = nullptr);

/// Evaluates `program` over a snapshot of `kb` and returns the derived
/// facts for `goal_predicate`, sorted. This is the primitive behind
/// transducer input-dependency checks and Vadalog-specified mappings.
/// `cache`, when non-null, supplies shared relation snapshots (safe to
/// share across concurrent queries; the KB must not be mutated while
/// queries run).
Result<std::vector<Tuple>> QueryKnowledgeBase(
    const Program& program, const KnowledgeBase& kb,
    const std::string& goal_predicate,
    const EvalOptions& options = EvalOptions(),
    SnapshotCache* cache = nullptr);

/// Parses `source`, then QueryKnowledgeBase. Convenience used by the
/// orchestrator, where dependency queries live as text in transducer
/// declarations (paper §2: "input and output dependencies defined as
/// Datalog queries over the knowledge base").
Result<std::vector<Tuple>> QueryKnowledgeBase(
    const std::string& source, const KnowledgeBase& kb,
    const std::string& goal_predicate,
    const EvalOptions& options = EvalOptions(),
    SnapshotCache* cache = nullptr);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_KB_ADAPTER_H_
