#ifndef VADA_DATALOG_AST_H_
#define VADA_DATALOG_AST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kb/value.h"

namespace vada::datalog {

/// A position in Vadalog source text (1-based). Default-constructed
/// positions (line 0) mean "unknown" — e.g. programmatically built ASTs.
/// The parser stamps every term, atom, literal and rule it produces so
/// static-analysis diagnostics can anchor to the offending token.
struct SourcePos {
  int line = 0;
  int col = 0;

  bool known() const { return line > 0; }
  /// "line L, col C" (or "unknown position").
  std::string ToString() const;
};

/// Aggregate functions usable in rule heads (Vadalog-style aggregation).
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// A term: a constant value, a variable, or (only in rule heads) an
/// aggregate over a variable such as count<X>.
class Term {
 public:
  enum class Kind { kConstant, kVariable, kAggregate };

  static Term Constant(Value v);
  static Term Variable(std::string name);
  static Term Aggregate(AggFunc func, std::string var);

  Kind kind() const { return kind_; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_aggregate() const { return kind_ == Kind::kAggregate; }

  /// Pre-condition: is_constant().
  const Value& value() const { return value_; }
  /// Pre-condition: is_variable() or is_aggregate() (the aggregated var).
  const std::string& var() const { return var_; }
  /// Pre-condition: is_aggregate().
  AggFunc agg_func() const { return agg_func_; }

  /// Source anchor of the term's first token; ignored by operator==.
  const SourcePos& pos() const { return pos_; }
  void set_pos(SourcePos pos) { pos_ = pos; }

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b);

 private:
  Kind kind_ = Kind::kConstant;
  Value value_;
  std::string var_;
  AggFunc agg_func_ = AggFunc::kCount;
  SourcePos pos_;
};

/// A predicate applied to terms: p(t1, ..., tn).
struct Atom {
  std::string predicate;
  std::vector<Term> terms;
  SourcePos pos;  ///< position of the predicate name token

  std::string ToString() const;
};

/// Comparison operators for built-in literals.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Arithmetic operators for assignment literals.
enum class ArithOp { kNone, kAdd, kSub, kMul, kDiv };

/// One conjunct of a rule body. Exactly one of the following shapes:
///  - positive atom          p(X, Y)
///  - negated atom           not p(X, Y)
///  - comparison             X < Y, X != "a"
///  - assignment             Z = X + Y, Z = X (copy)
struct Literal {
  enum class Kind { kAtom, kNegatedAtom, kComparison, kAssignment };

  Kind kind = Kind::kAtom;

  // kAtom / kNegatedAtom
  Atom atom;

  // kComparison
  CompareOp compare_op = CompareOp::kEq;
  Term lhs;  // also assignment operand 1
  Term rhs;  // also assignment operand 2 (unused when arith_op == kNone)

  // kAssignment
  std::string assign_var;
  ArithOp arith_op = ArithOp::kNone;

  SourcePos pos;  ///< position of the literal's first token

  static Literal Positive(Atom a);
  static Literal Negative(Atom a);
  static Literal Comparison(Term lhs, CompareOp op, Term rhs);
  static Literal Assignment(std::string var, Term operand1, ArithOp op,
                            Term operand2);

  std::string ToString() const;
};

/// A Datalog rule: head :- body. A rule with an empty body is a fact
/// (ground head required).
struct Rule {
  Atom head;
  std::vector<Literal> body;
  SourcePos pos;  ///< position of the head predicate token

  bool IsFact() const { return body.empty(); }
  bool HasAggregates() const;
  std::string ToString() const;
};

/// A parsed program: an ordered list of rules (facts included).
///
/// Use Validate() to check safety (range restriction): every variable in
/// the head, in negated atoms and in comparisons must be bound by a
/// positive body atom or by an assignment whose operands are bound.
struct Program {
  std::vector<Rule> rules;

  /// All predicate names appearing in rule heads (the IDB).
  std::vector<std::string> HeadPredicates() const;

  Status Validate() const;
  std::string ToString() const;
};

/// Checks a single rule for safety and aggregate placement; exposed for
/// targeted testing.
Status ValidateRule(const Rule& rule);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_AST_H_
