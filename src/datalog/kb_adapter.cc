#include "datalog/kb_adapter.h"

#include <set>

#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada::datalog {

void LoadKnowledgeBase(const KnowledgeBase& kb, Database* db) {
  for (const std::string& name : kb.RelationNames()) {
    const Relation* rel = kb.FindRelation(name);
    if (rel != nullptr) db->LoadRelation(*rel);
  }
}

void LoadReferencedRelations(const Program& program, const KnowledgeBase& kb,
                             Database* db, SnapshotCache* cache) {
  std::set<std::string> derived;
  for (const Rule& rule : program.rules) {
    derived.insert(rule.head.predicate);
  }
  std::set<std::string> loaded;
  for (const Rule& rule : program.rules) {
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom &&
          lit.kind != Literal::Kind::kNegatedAtom) {
        continue;
      }
      const std::string& pred = lit.atom.predicate;
      if (derived.count(pred) > 0 || !loaded.insert(pred).second) continue;
      if (cache != nullptr) {
        db->AttachShared(cache->Get(kb, pred));
        continue;
      }
      const Relation* rel = kb.FindRelation(pred);
      if (rel != nullptr) db->LoadRelation(*rel);
    }
  }
}

Result<std::vector<Tuple>> QueryKnowledgeBase(
    const Program& program, const KnowledgeBase& kb,
    const std::string& goal_predicate, const EvalOptions& options,
    SnapshotCache* cache) {
  Database db;
  LoadReferencedRelations(program, kb, &db, cache);
  return Query(program, &db, goal_predicate, options);
}

Result<std::vector<Tuple>> QueryKnowledgeBase(
    const std::string& source, const KnowledgeBase& kb,
    const std::string& goal_predicate, const EvalOptions& options,
    SnapshotCache* cache) {
  Result<Program> program = Parser::Parse(source);
  if (!program.ok()) return program.status();
  return QueryKnowledgeBase(program.value(), kb, goal_predicate, options,
                            cache);
}

}  // namespace vada::datalog
