#include "datalog/differential.h"

#include <algorithm>
#include <functional>
#include <iomanip>
#include <optional>
#include <sstream>
#include <utility>

#include "datalog/symbol_table.h"

namespace vada::datalog {
namespace {

constexpr size_t kNoTarget = static_cast<size_t>(-1);

void MergeEval(const EvalStats& from, EvalStats* to) {
  to->iterations += from.iterations;
  to->facts_derived += from.facts_derived;
  to->rule_applications += from.rule_applications;
  to->join_probes += from.join_probes;
  to->index_probes += from.index_probes;
  to->index_candidates += from.index_candidates;
  to->index_builds += from.index_builds;
}

void MergeDelta(const DeltaStats& from, DeltaStats* to) {
  if (to == nullptr) return;
  to->applies += from.applies;
  to->full_fallbacks += from.full_fallbacks;
  to->strata_skipped += from.strata_skipped;
  to->strata_counting += from.strata_counting;
  to->strata_monotone += from.strata_monotone;
  to->strata_recomputed += from.strata_recomputed;
  to->facts_inserted += from.facts_inserted;
  to->facts_retracted += from.facts_retracted;
  MergeEval(from.eval, &to->eval);
}

std::vector<SymbolId> InternRow(const Tuple& t) {
  SymbolTable& table = SymbolTable::Global();
  std::vector<SymbolId> row(t.size());
  for (size_t i = 0; i < t.size(); ++i) row[i] = table.Intern(t.at(i));
  return row;
}

std::string JoinPreds(const std::vector<std::string>& preds) {
  std::string out;
  for (const std::string& p : preds) {
    if (!out.empty()) out += ",";
    out += p;
  }
  return out;
}

}  // namespace

DifferentialEvaluator::DifferentialEvaluator(Program program,
                                             DifferentialOptions options)
    : program_(std::move(program)), opts_(options) {}

DifferentialEvaluator::~DifferentialEvaluator() = default;

Status DifferentialEvaluator::Prepare() {
  if (prepared_) {
    return Status::FailedPrecondition("Prepare() already called");
  }
  VADA_RETURN_IF_ERROR(program_.Validate());
  Result<Stratification> strat = Stratify(program_);
  if (!strat.ok()) return strat.status();
  stratification_ = std::move(strat).value();

  full_eval_ = std::make_unique<Evaluator>(program_, opts_.eval);
  VADA_RETURN_IF_ERROR(full_eval_->Prepare());

  // Per-stratum evaluators run as internal maintenance steps; the
  // full-program evaluator alone carries metric publication so a
  // maintained program doesn't double-count vada_datalog_* families.
  EvalOptions sub_opts = opts_.eval;
  sub_opts.metrics = nullptr;

  for (const std::vector<std::string>& stratum : stratification_.strata) {
    StratumInfo si;
    si.preds = stratum;
    std::sort(si.preds.begin(), si.preds.end());
    si.pred_set.insert(si.preds.begin(), si.preds.end());
    bool same_stratum_ref = false;
    for (const Rule& r : program_.rules) {
      if (si.pred_set.count(r.head.predicate) == 0) continue;
      si.rules.push_back(&r);
      si.sub_program.rules.push_back(r);
      if (r.HasAggregates()) si.has_negation_or_aggregates = true;
      for (const Literal& l : r.body) {
        if (l.kind != Literal::Kind::kAtom &&
            l.kind != Literal::Kind::kNegatedAtom) {
          continue;
        }
        if (l.kind == Literal::Kind::kNegatedAtom) {
          si.has_negation_or_aggregates = true;
        }
        if (si.pred_set.count(l.atom.predicate) > 0) {
          same_stratum_ref = true;
        } else {
          si.input_preds.insert(l.atom.predicate);
        }
      }
    }
    if (si.has_negation_or_aggregates) {
      si.mode = StratumMode::kComplex;
    } else if (same_stratum_ref) {
      si.mode = StratumMode::kMonotone;
    } else {
      si.mode = StratumMode::kCounting;
      for (const Rule* r : si.rules) {
        SweepRule sweep;
        if (!CompileSweep(*r, &sweep)) {
          // Defensive: every validated negation/aggregate-free rule
          // should compile; fall back to the slower-but-sound mode.
          si.mode = StratumMode::kMonotone;
          si.sweeps.clear();
          break;
        }
        si.sweeps.push_back(std::move(sweep));
      }
    }
    si.sub_eval = std::make_unique<Evaluator>(si.sub_program, sub_opts);
    VADA_RETURN_IF_ERROR(si.sub_eval->Prepare());
    for (const std::string& p : si.preds) stratum_of_[p] = strata_.size();
    strata_.push_back(std::move(si));
  }
  prepared_ = true;
  return Status::OK();
}

bool DifferentialEvaluator::CompileSweep(const Rule& rule,
                                         SweepRule* out) const {
  if (rule.HasAggregates()) return false;
  SymbolTable& table = SymbolTable::Global();
  // Slot existence doubles as boundness: slots are created only when a
  // placed atom or assignment binds the variable.
  std::map<std::string, int> slots;
  auto make_term = [&](const Term& t,
                       bool bind_new) -> std::optional<SweepTerm> {
    SweepTerm st;
    if (t.is_constant()) {
      st.constant = t.value();
      st.const_id = table.Intern(t.value());
      return st;
    }
    if (!t.is_variable()) return std::nullopt;
    st.is_var = true;
    auto it = slots.find(t.var());
    if (it == slots.end()) {
      if (!bind_new) return std::nullopt;
      it = slots.emplace(t.var(), static_cast<int>(slots.size())).first;
    }
    st.slot = it->second;
    return st;
  };

  std::vector<const Literal*> atoms;
  std::vector<const Literal*> filters;  // comparisons + assignments
  for (const Literal& l : rule.body) {
    switch (l.kind) {
      case Literal::Kind::kAtom:
        atoms.push_back(&l);
        break;
      case Literal::Kind::kNegatedAtom:
        return false;
      default:
        filters.push_back(&l);
        break;
    }
  }
  // Greedy safe order: atoms keep their declared relative order (the
  // delta decomposition is order-insensitive, only safety matters);
  // each filter is placed as soon as its variables are bound.
  std::vector<bool> placed(filters.size(), false);
  auto place_ready_filters = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t i = 0; i < filters.size(); ++i) {
        if (placed[i]) continue;
        const Literal& l = *filters[i];
        SweepLit sl;
        sl.kind = l.kind;
        if (l.kind == Literal::Kind::kComparison) {
          std::optional<SweepTerm> a = make_term(l.lhs, false);
          std::optional<SweepTerm> b = make_term(l.rhs, false);
          if (!a.has_value() || !b.has_value()) continue;  // still unbound
          sl.compare_op = l.compare_op;
          sl.lhs = std::move(*a);
          sl.rhs = std::move(*b);
        } else {  // kAssignment
          std::optional<SweepTerm> a = make_term(l.lhs, false);
          if (!a.has_value()) continue;
          sl.arith_op = l.arith_op;
          sl.lhs = std::move(*a);
          if (l.arith_op != ArithOp::kNone) {
            std::optional<SweepTerm> b = make_term(l.rhs, false);
            if (!b.has_value()) continue;
            sl.rhs = std::move(*b);
          }
          auto it = slots.find(l.assign_var);
          if (it == slots.end()) {
            it = slots.emplace(l.assign_var, static_cast<int>(slots.size()))
                     .first;
          }
          sl.assign_slot = it->second;
        }
        out->body.push_back(std::move(sl));
        placed[i] = true;
        progress = true;
      }
    }
  };
  for (const Literal* l : atoms) {
    place_ready_filters();
    SweepLit sl;
    sl.kind = Literal::Kind::kAtom;
    sl.predicate = l->atom.predicate;
    for (const Term& t : l->atom.terms) {
      std::optional<SweepTerm> st = make_term(t, true);
      if (!st.has_value()) return false;
      sl.terms.push_back(std::move(*st));
    }
    out->atom_positions.push_back(out->body.size());
    out->body.push_back(std::move(sl));
  }
  place_ready_filters();
  for (bool p : placed) {
    if (!p) return false;  // unsafe filter — Validate() should prevent
  }
  out->head_pred = rule.head.predicate;
  for (const Term& t : rule.head.terms) {
    std::optional<SweepTerm> st = make_term(t, false);
    if (!st.has_value()) return false;  // unbound head variable
    out->head.push_back(std::move(*st));
  }
  out->num_slots = static_cast<int>(slots.size());
  return true;
}

template <typename Emit>
void DifferentialEvaluator::SweepSolutions(const SweepRule& rule,
                                           const Database& new_db,
                                           const Database* old_db,
                                           size_t target_atom,
                                           const std::vector<Row>* delta_rows,
                                           EvalStats* st,
                                           const Emit& emit) const {
  SymbolTable& table = SymbolTable::Global();
  std::vector<SymbolId> slots(rule.num_slots, kNoSymbol);
  std::vector<int> trail;
  auto term_value = [&](const SweepTerm& t) -> const Value& {
    return t.is_var ? table.value(slots[t.slot]) : t.constant;
  };
  std::function<void(size_t, size_t)> descend = [&](size_t li,
                                                    size_t atom_seen) {
    if (li == rule.body.size()) {
      Row head(rule.head.size());
      for (size_t i = 0; i < rule.head.size(); ++i) {
        const SweepTerm& t = rule.head[i];
        head[i] = t.is_var ? slots[t.slot] : t.const_id;
      }
      emit(head);
      return;
    }
    const SweepLit& lit = rule.body[li];
    switch (lit.kind) {
      case Literal::Kind::kAtom: {
        const size_t k = atom_seen;
        auto match_row = [&](const SymbolId* ids, size_t n) {
          if (n != lit.terms.size()) return;
          size_t mark = trail.size();
          bool ok = true;
          for (size_t p = 0; p < n; ++p) {
            const SweepTerm& t = lit.terms[p];
            if (!t.is_var) {
              if (ids[p] != t.const_id) {
                ok = false;
                break;
              }
            } else if (slots[t.slot] == kNoSymbol) {
              slots[t.slot] = ids[p];
              trail.push_back(t.slot);
            } else if (slots[t.slot] != ids[p]) {
              ok = false;
              break;
            }
          }
          if (ok) descend(li + 1, k + 1);
          while (trail.size() > mark) {
            slots[trail.back()] = kNoSymbol;
            trail.pop_back();
          }
        };
        if (k == target_atom) {
          for (const Row& r : *delta_rows) match_row(r.data(), r.size());
          return;
        }
        // Occurrences left of the delta'd one read the updated store,
        // occurrences right of it the pre-batch snapshot — the
        // telescoping split that makes the signed sweep sum exactly
        // Q(new) - Q(old).
        const Database& db =
            (target_atom == kNoTarget || k < target_atom) ? new_db : *old_db;
        Database::View v = db.view(lit.predicate);
        if (!v.valid() || v.arity() != lit.terms.size()) return;
        size_t seek_pos = kNoTarget;
        SymbolId seek_id = kNoSymbol;
        for (size_t p = 0; p < lit.terms.size(); ++p) {
          const SweepTerm& t = lit.terms[p];
          if (!t.is_var) {
            seek_pos = p;
            seek_id = t.const_id;
            break;
          }
          if (slots[t.slot] != kNoSymbol) {
            seek_pos = p;
            seek_id = slots[t.slot];
            break;
          }
        }
        const size_t arity = v.arity();
        std::vector<SymbolId> row_ids(arity);
        auto row_at = [&](uint32_t r) {
          for (size_t p = 0; p < arity; ++p) row_ids[p] = v.column(p)[r];
          match_row(row_ids.data(), arity);
        };
        if (seek_pos != kNoTarget) {
          const std::vector<uint32_t>* postings = v.LookupId(seek_pos, seek_id);
          if (postings == nullptr) return;
          if (st != nullptr) st->join_probes += postings->size();
          for (uint32_t r : *postings) row_at(r);
        } else {
          if (st != nullptr) st->join_probes += v.rows();
          for (size_t r = 0; r < v.rows(); ++r) {
            row_at(static_cast<uint32_t>(r));
          }
        }
        return;
      }
      case Literal::Kind::kComparison: {
        if (EvalCompare(lit.compare_op, term_value(lit.lhs),
                        term_value(lit.rhs))) {
          descend(li + 1, atom_seen);
        }
        return;
      }
      case Literal::Kind::kAssignment: {
        const Value& a = term_value(lit.lhs);
        std::optional<Value> result;
        if (lit.arith_op == ArithOp::kNone) {
          result = a;
        } else {
          result = ApplyArith(lit.arith_op, a, term_value(lit.rhs));
        }
        if (!result.has_value()) return;  // arithmetic failure: false
        if (slots[lit.assign_slot] != kNoSymbol) {
          // Mirror the evaluator: numeric coercion compares Values.
          std::optional<int> cmp = CompareValues(
              table.value(slots[lit.assign_slot]), *result);
          if (cmp.has_value() && *cmp == 0) descend(li + 1, atom_seen);
          return;
        }
        slots[lit.assign_slot] = table.Intern(*result);
        descend(li + 1, atom_seen);
        slots[lit.assign_slot] = kNoSymbol;
        return;
      }
      case Literal::Kind::kNegatedAtom:
        return;  // never compiled into sweeps
    }
  };
  descend(0, 0);
}

Status DifferentialEvaluator::Initialize(const Database& edb,
                                         DeltaStats* stats) {
  if (!prepared_) {
    return Status::FailedPrecondition("Initialize() before Prepare()");
  }
  DeltaStats local;
  state_.clear();
  for (const std::string& pred : edb.Predicates()) {
    Database::View v = edb.view(pred);
    if (!v.valid()) continue;
    PredState& ps = state_[pred];
    ps.arity = v.arity();
    ps.arity_set = true;
    Row row(v.arity());
    for (size_t r = 0; r < v.rows(); ++r) {
      for (size_t p = 0; p < v.arity(); ++p) row[p] = v.column(p)[r];
      ps.rows[row].base = true;
    }
  }
  Database db = edb;
  EvalStats es;
  VADA_RETURN_IF_ERROR(full_eval_->Run(&db, &es));
  MergeEval(es, &local.eval);
  VADA_RETURN_IF_ERROR(RebuildDerivedState(db, &local.eval));
  current_ = std::make_shared<const Database>(std::move(db));
  initialized_ = true;
  last_plan_ = "full plan: initialize";
  MergeDelta(local, &lifetime_);
  MergeDelta(local, stats);
  return Status::OK();
}

Status DifferentialEvaluator::RebuildDerivedState(const Database& db,
                                                  EvalStats* st) {
  for (StratumInfo& si : strata_) {
    for (const std::string& pred : si.preds) {
      PredState& ps = state_[pred];
      for (auto it = ps.rows.begin(); it != ps.rows.end();) {
        if (!it->second.base) {
          it = ps.rows.erase(it);
        } else {
          it->second.count = 0;
          ++it;
        }
      }
    }
  }
  for (StratumInfo& si : strata_) {
    if (si.mode == StratumMode::kCounting) {
      for (const SweepRule& sweep : si.sweeps) {
        PredState& ps = state_[sweep.head_pred];
        if (!ps.arity_set) {
          ps.arity = sweep.head.size();
          ps.arity_set = true;
        }
        SweepSolutions(sweep, db, nullptr, kNoTarget, nullptr, st,
                       [&](const Row& row) { ++ps.rows[row].count; });
      }
    } else {
      for (const std::string& pred : si.preds) {
        Database::View v = db.view(pred);
        if (!v.valid()) continue;
        PredState& ps = state_[pred];
        if (!ps.arity_set) {
          ps.arity = v.arity();
          ps.arity_set = true;
        }
        Row row(v.arity());
        for (size_t r = 0; r < v.rows(); ++r) {
          for (size_t p = 0; p < v.arity(); ++p) row[p] = v.column(p)[r];
          FactInfo& fi = ps.rows[row];
          if (!fi.base) fi.count = 1;
        }
      }
    }
  }
  return Status::OK();
}

Status DifferentialEvaluator::ApplyDelta(const RelationDelta& delta,
                                         DeltaStats* stats) {
  if (!initialized_) {
    return Status::FailedPrecondition("ApplyDelta() before Initialize()");
  }
  DeltaStats local;
  ++local.applies;

  // Pass 1 (no mutation): intern, net insert/retract pairs, and keep
  // only rows whose base flag actually flips — re-inserting a present
  // row or retracting an absent one is a no-op by contract.
  std::map<std::string, PredDelta> flips;
  size_t flip_rows = 0;
  for (const auto& [pred, dr] : delta) {
    std::set<Row> inserts;
    std::set<Row> retracts;
    for (const Tuple& t : dr.inserts) inserts.insert(InternRow(t));
    for (const Tuple& t : dr.retracts) retracts.insert(InternRow(t));
    for (auto it = inserts.begin(); it != inserts.end();) {
      auto rit = retracts.find(*it);
      if (rit != retracts.end()) {
        retracts.erase(rit);
        it = inserts.erase(it);
      } else {
        ++it;
      }
    }
    if (inserts.empty() && retracts.empty()) continue;
    PredState& ps = state_[pred];
    for (const Row& row : inserts) {
      if (ps.arity_set && row.size() != ps.arity) continue;  // defensive
      auto it = ps.rows.find(row);
      if (it != ps.rows.end() && it->second.base) continue;
      flips[pred].inserts.push_back(row);
      ++flip_rows;
    }
    for (const Row& row : retracts) {
      if (ps.arity_set && row.size() != ps.arity) continue;
      auto it = ps.rows.find(row);
      if (it == ps.rows.end() || !it->second.base) continue;
      flips[pred].retracts.push_back(row);
      ++flip_rows;
    }
  }
  if (flip_rows == 0) {
    last_plan_ = "delta plan: no-op";
    MergeDelta(local, &lifetime_);
    MergeDelta(local, stats);
    return Status::OK();
  }

  const size_t base_total = BaseRowCount();
  const double fraction = static_cast<double>(flip_rows) /
                          static_cast<double>(std::max<size_t>(1, base_total));
  if (opts_.max_delta_fraction <= 0 || fraction > opts_.max_delta_fraction) {
    for (auto& [pred, pd] : flips) {
      PredState& ps = state_[pred];
      for (const Row& row : pd.inserts) {
        if (!ps.arity_set) {
          ps.arity = row.size();
          ps.arity_set = true;
        }
        ps.rows[row].base = true;
      }
      for (const Row& row : pd.retracts) {
        auto it = ps.rows.find(row);
        if (it == ps.rows.end()) continue;
        it->second.base = false;
        // Stale derived counts are rebuilt below; EDB rows die here.
        if (it->second.count == 0) ps.rows.erase(it);
      }
    }
    Status s = FullRebuild(&local);
    std::ostringstream plan;
    plan << "full plan: fallback (delta fraction " << std::fixed
         << std::setprecision(2) << fraction << ", " << flip_rows << "/"
         << base_total << " base rows)";
    last_plan_ = plan.str();
    MergeDelta(local, &lifetime_);
    MergeDelta(local, stats);
    return s;
  }

  // Incremental path. `pending` carries each predicate's presence
  // changes downstream; `staged` holds base flips of IDB predicates
  // until their stratum is processed (their presence depends on
  // derivation counts, so the flip is folded in there).
  std::map<std::string, PredDelta> pending;
  std::vector<Stage> staged(strata_.size());
  Database next;
  next.AttachShared(current_);
  for (auto& [pred, pd] : flips) {
    auto sit = stratum_of_.find(pred);
    if (sit != stratum_of_.end()) {
      staged[sit->second][pred] = std::move(pd);
      continue;
    }
    // EDB: the base flag is the presence.
    PredState& ps = state_[pred];
    PredDelta& out = pending[pred];
    for (const Row& row : pd.inserts) {
      if (!ps.arity_set) {
        ps.arity = row.size();
        ps.arity_set = true;
      }
      ps.rows[row].base = true;
      out.inserts.push_back(row);
      ++local.facts_inserted;
    }
    for (const Row& row : pd.retracts) {
      ps.rows.erase(row);
      out.retracts.push_back(row);
      ++local.facts_retracted;
    }
    if (out.retracts.empty()) {
      for (const Row& row : out.inserts) {
        next.InsertIds(pred, row.data(), row.size());
      }
    } else {
      RebuildPredicate(&next, pred);
    }
  }

  std::ostringstream plan;
  plan << "delta plan (fraction " << std::fixed << std::setprecision(2)
       << fraction << "):";
  for (size_t s = 0; s < strata_.size(); ++s) {
    StratumInfo& si = strata_[s];
    bool inputs_changed = false;
    bool input_retracts = false;
    for (const std::string& in : si.input_preds) {
      auto it = pending.find(in);
      if (it == pending.end()) continue;
      if (!it->second.inserts.empty() || !it->second.retracts.empty()) {
        inputs_changed = true;
      }
      if (!it->second.retracts.empty()) input_retracts = true;
    }
    const Stage& stage = staged[s];
    bool stage_retracts = false;
    for (const auto& [pred, pd] : stage) {
      if (!pd.retracts.empty()) stage_retracts = true;
    }
    const char* mode_name = "skip";
    if (!inputs_changed && stage.empty()) {
      ++local.strata_skipped;
    } else if (si.mode == StratumMode::kCounting) {
      mode_name = "counting";
      VADA_RETURN_IF_ERROR(ApplyCounting(&si, &next, &pending, &stage,
                                         &local));
    } else if (si.mode == StratumMode::kMonotone && !input_retracts &&
               !stage_retracts) {
      mode_name = "monotone";
      VADA_RETURN_IF_ERROR(ApplyMonotone(&si, &next, &pending, &stage,
                                         &local));
    } else {
      mode_name = "recompute";
      VADA_RETURN_IF_ERROR(Recompute(&si, &next, &pending, &stage, &local));
    }
    plan << " {" << JoinPreds(si.preds) << "}=" << mode_name;
  }
  current_ = std::make_shared<const Database>(std::move(next));
  last_plan_ = plan.str();
  MergeDelta(local, &lifetime_);
  MergeDelta(local, stats);
  return Status::OK();
}

Status DifferentialEvaluator::ApplyCounting(
    StratumInfo* si, Database* next, std::map<std::string, PredDelta>* pending,
    const Stage* stage, DeltaStats* st) {
  ++st->strata_counting;
  std::map<std::string, std::map<Row, RowChange>> changes;
  for (const SweepRule& sweep : si->sweeps) {
    std::map<Row, RowChange>& head_changes = changes[sweep.head_pred];
    for (size_t k = 0; k < sweep.atom_positions.size(); ++k) {
      const SweepLit& atom = sweep.body[sweep.atom_positions[k]];
      auto it = pending->find(atom.predicate);
      if (it == pending->end()) continue;
      if (!it->second.inserts.empty()) {
        ++st->eval.rule_applications;
        SweepSolutions(sweep, *next, current_.get(), k, &it->second.inserts,
                       &st->eval,
                       [&](const Row& row) { ++head_changes[row].count_delta; });
      }
      if (!it->second.retracts.empty()) {
        ++st->eval.rule_applications;
        SweepSolutions(sweep, *next, current_.get(), k, &it->second.retracts,
                       &st->eval,
                       [&](const Row& row) { --head_changes[row].count_delta; });
      }
    }
  }
  for (const auto& [pred, pd] : *stage) {
    std::map<Row, RowChange>& ch = changes[pred];
    for (const Row& row : pd.inserts) ch[row].base_set = 1;
    for (const Row& row : pd.retracts) ch[row].base_set = 0;
  }
  for (const std::string& pred : si->preds) {
    auto it = changes.find(pred);
    if (it == changes.end() || it->second.empty()) continue;
    ApplyRowChanges(pred, it->second, next, &(*pending)[pred], st);
  }
  return Status::OK();
}

Status DifferentialEvaluator::ApplyMonotone(
    StratumInfo* si, Database* next, std::map<std::string, PredDelta>* pending,
    const Stage* stage, DeltaStats* st) {
  ++st->strata_monotone;
  Database delta_db;
  for (const std::string& in : si->input_preds) {
    auto it = pending->find(in);
    if (it == pending->end()) continue;
    for (const Row& row : it->second.inserts) {
      delta_db.InsertIds(in, row.data(), row.size());
    }
  }
  for (const auto& [pred, pd] : *stage) {
    PredState& ps = state_[pred];
    for (const Row& row : pd.inserts) {
      if (!ps.arity_set) {
        ps.arity = row.size();
        ps.arity_set = true;
      }
      FactInfo& fi = ps.rows[row];
      const bool before = fi.Present();
      fi.base = true;
      if (!before) {
        next->InsertIds(pred, row.data(), row.size());
        delta_db.InsertIds(pred, row.data(), row.size());
        (*pending)[pred].inserts.push_back(row);
        ++st->facts_inserted;
      }
    }
  }
  Database added;
  VADA_RETURN_IF_ERROR(
      si->sub_eval->RunIncrement(next, delta_db, &st->eval, &added));
  for (const std::string& pred : added.Predicates()) {
    Database::View v = added.view(pred);
    if (!v.valid()) continue;
    PredState& ps = state_[pred];
    if (!ps.arity_set) {
      ps.arity = v.arity();
      ps.arity_set = true;
    }
    Row row(v.arity());
    for (size_t r = 0; r < v.rows(); ++r) {
      for (size_t p = 0; p < v.arity(); ++p) row[p] = v.column(p)[r];
      FactInfo& fi = ps.rows[row];
      if (!fi.Present()) {
        fi.count = 1;
        (*pending)[pred].inserts.push_back(row);
        ++st->facts_inserted;
      }
    }
  }
  return Status::OK();
}

Status DifferentialEvaluator::Recompute(StratumInfo* si, Database* next,
                                        std::map<std::string, PredDelta>*
                                            pending,
                                        const Stage* stage, DeltaStats* st) {
  ++st->strata_recomputed;
  // Presence before this batch touched the stratum (pre-stage): the
  // diff against the re-evaluation is computed from this snapshot.
  std::map<std::string, std::set<Row>> old_present;
  for (const std::string& pred : si->preds) {
    auto it = state_.find(pred);
    if (it == state_.end()) continue;
    std::set<Row>& rows = old_present[pred];
    for (const auto& [row, fi] : it->second.rows) {
      if (fi.Present()) rows.insert(row);
    }
  }
  for (const auto& [pred, pd] : *stage) {
    PredState& ps = state_[pred];
    for (const Row& row : pd.inserts) {
      if (!ps.arity_set) {
        ps.arity = row.size();
        ps.arity_set = true;
      }
      ps.rows[row].base = true;
    }
    for (const Row& row : pd.retracts) {
      auto it = ps.rows.find(row);
      if (it != ps.rows.end()) it->second.base = false;
    }
  }
  // Re-evaluate the stratum in isolation: clear its predicates, reseed
  // base rows, run the sub-program against the maintained inputs.
  for (const std::string& pred : si->preds) {
    next->ResetPredicate(pred);
    auto it = state_.find(pred);
    if (it == state_.end()) continue;
    for (const auto& [row, fi] : it->second.rows) {
      if (fi.base) next->InsertIds(pred, row.data(), row.size());
    }
  }
  EvalStats es;
  VADA_RETURN_IF_ERROR(si->sub_eval->Run(next, &es));
  MergeEval(es, &st->eval);
  for (const std::string& pred : si->preds) {
    PredState& ps = state_[pred];
    std::set<Row> new_rows;
    Database::View v = next->view(pred);
    if (v.valid()) {
      if (!ps.arity_set) {
        ps.arity = v.arity();
        ps.arity_set = true;
      }
      Row row(v.arity());
      for (size_t r = 0; r < v.rows(); ++r) {
        for (size_t p = 0; p < v.arity(); ++p) row[p] = v.column(p)[r];
        new_rows.insert(row);
      }
    }
    const std::set<Row>& old_rows = old_present[pred];
    PredDelta pd;
    for (const Row& row : new_rows) {
      if (old_rows.count(row) == 0) pd.inserts.push_back(row);
    }
    for (const Row& row : old_rows) {
      if (new_rows.count(row) == 0) pd.retracts.push_back(row);
    }
    for (auto it = ps.rows.begin(); it != ps.rows.end();) {
      FactInfo& fi = it->second;
      const bool present = new_rows.count(it->first) > 0;
      fi.count = (present && !fi.base) ? 1 : 0;
      if (!fi.base && !present) {
        it = ps.rows.erase(it);
      } else {
        ++it;
      }
    }
    for (const Row& row : new_rows) {
      FactInfo& fi = ps.rows[row];
      if (!fi.base && fi.count == 0) fi.count = 1;
    }
    st->facts_inserted += pd.inserts.size();
    st->facts_retracted += pd.retracts.size();
    if (!pd.inserts.empty() || !pd.retracts.empty()) {
      (*pending)[pred] = std::move(pd);
    }
  }
  return Status::OK();
}

Status DifferentialEvaluator::FullRebuild(DeltaStats* st) {
  ++st->full_fallbacks;
  Database db;
  for (const auto& [pred, ps] : state_) {
    for (const auto& [row, fi] : ps.rows) {
      if (fi.base) db.InsertIds(pred, row.data(), row.size());
    }
  }
  EvalStats es;
  VADA_RETURN_IF_ERROR(full_eval_->Run(&db, &es));
  MergeEval(es, &st->eval);
  VADA_RETURN_IF_ERROR(RebuildDerivedState(db, &st->eval));
  current_ = std::make_shared<const Database>(std::move(db));
  return Status::OK();
}

void DifferentialEvaluator::RebuildPredicate(Database* next,
                                             const std::string& pred) {
  next->ResetPredicate(pred);
  auto it = state_.find(pred);
  if (it == state_.end()) return;
  for (const auto& [row, fi] : it->second.rows) {
    if (fi.Present()) next->InsertIds(pred, row.data(), row.size());
  }
}

void DifferentialEvaluator::ApplyRowChanges(
    const std::string& pred, const std::map<Row, RowChange>& changes,
    Database* next, PredDelta* out, DeltaStats* st) {
  PredState& ps = state_[pred];
  std::vector<Row> dead;
  for (const auto& [row, ch] : changes) {
    if (!ps.arity_set) {
      ps.arity = row.size();
      ps.arity_set = true;
    }
    if (row.size() != ps.arity) continue;
    FactInfo& fi = ps.rows[row];
    const bool before = fi.Present();
    fi.count += ch.count_delta;
    if (ch.base_set >= 0) fi.base = ch.base_set != 0;
    const bool after = fi.Present();
    if (after && !before) {
      out->inserts.push_back(row);
      ++st->facts_inserted;
    } else if (before && !after) {
      out->retracts.push_back(row);
      ++st->facts_retracted;
    }
    if (!fi.base && fi.count <= 0) dead.push_back(row);
  }
  for (const Row& row : dead) ps.rows.erase(row);
  if (!out->retracts.empty()) {
    // The columnar store has no row removal: rebuild from the state
    // map (sorted rows — consumers order-normalize; DESIGN.md §5k).
    RebuildPredicate(next, pred);
  } else {
    for (const Row& row : out->inserts) {
      next->InsertIds(pred, row.data(), row.size());
    }
  }
}

size_t DifferentialEvaluator::BaseRowCount() const {
  size_t n = 0;
  for (const auto& [pred, ps] : state_) {
    for (const auto& [row, fi] : ps.rows) {
      if (fi.base) ++n;
    }
  }
  return n;
}

}  // namespace vada::datalog
