#ifndef VADA_DATALOG_EVALUATOR_H_
#define VADA_DATALOG_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/planner.h"
#include "datalog/provenance.h"
#include "datalog/stratify.h"
#include "obs/metrics.h"

namespace vada::datalog {

struct PlanExplain;  // datalog/explain.h

/// Evaluation strategy and safety limits.
struct EvalOptions {
  /// Semi-naive (delta-driven) fixpoint vs. naive re-derivation. Naive is
  /// kept as the paper-ablation baseline (bench E9) and as an oracle for
  /// differential testing. Semi-naive rounds have batch semantics: every
  /// rule of a round is evaluated against the round-start database and
  /// results are merged in rule order, which is what makes parallel and
  /// sequential evaluation bit-identical (DESIGN.md §5e).
  bool semi_naive = true;
  /// Hard cap on fixpoint iterations per stratum (safety valve; Datalog
  /// always terminates, so hitting this indicates an engine bug).
  size_t max_iterations = 1000000;
  /// When set, Run() additionally records vada_datalog_* metrics
  /// (rules fired, facts derived, join probes, per-stratum time) into
  /// this registry. Null: no instrumentation beyond EvalStats.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional worker pool (not owned). When set, the rules of each
  /// semi-naive round are evaluated concurrently and large rules are
  /// additionally split into outer-candidate range chunks. Results are
  /// merged in fixed task order, so derived facts, their order, and
  /// EvalStats are identical to a nullptr-pool run. Null: evaluate
  /// inline on the calling thread.
  ThreadPool* pool = nullptr;
  /// Minimum number of outer-literal candidates before one rule
  /// evaluation is split into parallel range chunks (only with `pool`).
  size_t parallel_chunk_threshold = 1024;
  /// Join planning: composite hash-index probing and cost-based literal
  /// reordering (DESIGN.md §5f). Defaults on; `{.indexes = false,
  /// .reorder = false}` is the full-scan, legacy-order reference oracle
  /// the differential fuzz harness compares against. The derived fact
  /// *set* is identical at every setting; `reorder` may permute row
  /// order (reordered joins enumerate solutions differently), `indexes`
  /// never does.
  PlannerOptions planner;
};

/// Counters describing one evaluation run.
///
/// Join work is split by resolution strategy (DESIGN.md §5b):
/// `join_probes` counts candidate facts *scanned* by body atoms that
/// had no composite index (full scans and single-column seeks), while
/// `index_probes`/`index_candidates` count composite hash lookups and
/// the exact-match facts they enumerated. Total join work is
/// join_probes + index_probes + index_candidates.
struct EvalStats {
  size_t iterations = 0;         ///< total fixpoint rounds across strata
  size_t facts_derived = 0;      ///< new IDB facts added
  size_t rule_applications = 0;  ///< rule body evaluations attempted
  size_t join_probes = 0;        ///< candidate facts scanned (non-indexed)
  size_t index_probes = 0;       ///< composite hash-index lookups
  size_t index_candidates = 0;   ///< facts enumerated from index buckets
  size_t index_builds = 0;       ///< composite indexes built lazily
};

/// Bottom-up evaluator for validated, stratifiable programs.
///
/// Facts already in the database act as the EDB; derived facts are added
/// in place. Typical use:
///
///   Result<Program> p = Parser::Parse("tc(X,Y) :- edge(X,Y). ...");
///   Database db;                 // load EDB facts
///   Evaluator eval(std::move(p).value());
///   Status s = eval.Prepare();   // validates + stratifies
///   s = eval.Run(&db);
///   std::vector<Tuple> answers = db.facts("tc");  // materialized copy
class Evaluator {
 public:
  explicit Evaluator(Program program, EvalOptions options = EvalOptions());

  /// Validates and stratifies the program; must be called (once) before
  /// Run. Separated from the constructor so errors surface as Status.
  Status Prepare();

  /// Evaluates all strata to fixpoint against `db`. When `provenance` is
  /// non-null, records one derivation (rule + ground positive premises)
  /// per newly derived fact — see Provenance::Explain.
  /// Pre-condition: Prepare() returned OK.
  Status Run(Database* db, EvalStats* stats = nullptr,
             Provenance* provenance = nullptr);

  /// Monotone insert continuation (DESIGN.md §5k): `db` already holds a
  /// fixpoint of this program plus the freshly inserted facts listed in
  /// `delta`; derives (only) the consequences of those insertions and
  /// adds them to `db`, restoring the fixpoint. Every positive body-atom
  /// occurrence over a delta'd predicate is evaluated once with that
  /// occurrence restricted to the delta, then newly derived facts form
  /// the next round's delta — standard semi-naive, started from an
  /// arbitrary insertion instead of the empty database. Sequential and
  /// deterministic; `added` (optional) collects the newly derived facts.
  /// Fails with kFailedPrecondition for programs with negation or
  /// aggregates (insert-monotonicity does not hold there — callers fall
  /// back to recomputation; see datalog/differential.h).
  Status RunIncrement(Database* db, const Database& delta,
                      EvalStats* stats = nullptr, Database* added = nullptr);

  /// EXPLAIN / EXPLAIN ANALYZE (DESIGN.md §5g). With `analyze == false`,
  /// compiles every stratum's join plans against `db` as-is and fills
  /// `*out` without evaluating anything — `db` is not mutated, and the
  /// estimates of later strata therefore use pre-run cardinalities
  /// (a real run would see earlier strata's derived facts). With
  /// `analyze == true`, runs the program exactly like Run() — mutating
  /// `db`, recording metrics and `stats` — and additionally attributes
  /// per-literal probes, candidates and inclusive time to the plan.
  /// Explain structures are materialized only on this path; Run() pays
  /// nothing for them. Pre-condition: Prepare() returned OK.
  Status Explain(Database* db, PlanExplain* out, bool analyze = false,
                 EvalStats* stats = nullptr);

  const Stratification& stratification() const { return stratification_; }

 private:
  Status RunInternal(Database* db, EvalStats* stats, Provenance* provenance,
                     PlanExplain* explain);

  Program program_;
  EvalOptions options_;
  Stratification stratification_;
  bool prepared_ = false;
};

/// One-shot helper: validates, stratifies and runs `program` against
/// `db`, then returns the facts of `goal_predicate` (sorted, for
/// deterministic comparison).
Result<std::vector<Tuple>> Query(const Program& program, Database* db,
                                 const std::string& goal_predicate,
                                 const EvalOptions& options = EvalOptions());

/// Three-way comparison with int/double coercion: -1, 0, 1, or nullopt
/// when the values are of different, non-numeric types.
std::optional<int> CompareValues(const Value& a, const Value& b);

/// Truth of `a op b` under CompareValues semantics (incomparable values
/// satisfy only `!=`) — the comparison-literal semantics, shared with
/// the differential evaluator's sweep executor.
bool EvalCompare(CompareOp op, const Value& a, const Value& b);

/// Applies `op`; int op int stays int (except division, always double).
/// nullopt on non-numeric operands or division by zero.
std::optional<Value> ApplyArith(ArithOp op, const Value& a, const Value& b);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_EVALUATOR_H_
