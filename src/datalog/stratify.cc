#include "datalog/stratify.h"

#include <algorithm>
#include <set>

namespace vada::datalog {

namespace {

struct Edge {
  int from;
  int to;
  bool strict;  // negation/aggregation edge
};

/// Iterative Tarjan SCC over an adjacency list; returns component id per
/// node, with component ids in reverse topological order (a node's
/// successors have component ids <= its own id... Tarjan emits SCCs in
/// reverse topological order, so edges go from higher component ids to
/// lower or equal). We renumber afterwards, so only grouping matters.
std::vector<int> TarjanScc(int n, const std::vector<std::vector<int>>& adj) {
  std::vector<int> index(n, -1), lowlink(n, 0), component(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;
  int next_component = 0;

  struct Frame {
    int node;
    size_t child;
  };
  for (int start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      int v = f.node;
      if (f.child < adj[v].size()) {
        int w = adj[v][f.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = next_component;
            if (w == v) break;
          }
          ++next_component;
        }
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return component;
}

/// Shortest predicate path from `from` to `to` restricted to one SCC
/// (both endpoints and every hop share `component_id`). Pre-condition:
/// such a path exists — `from` and `to` lie in the same component.
std::vector<int> PathWithinComponent(int from, int to,
                                     const std::vector<std::vector<int>>& adj,
                                     const std::vector<int>& component,
                                     int component_id) {
  std::vector<int> parent(adj.size(), -1);
  std::vector<int> queue{from};
  std::vector<bool> visited(adj.size(), false);
  visited[from] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int v = queue[qi];
    if (v == to) break;
    for (int w : adj[v]) {
      if (visited[w] || component[w] != component_id) continue;
      visited[w] = true;
      parent[w] = v;
      queue.push_back(w);
    }
  }
  std::vector<int> path;
  for (int v = to; v != -1; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Result<Stratification> Stratify(const Program& program,
                                std::vector<std::string>* negative_cycle) {
  // Collect IDB predicates (those with rules) and assign dense ids.
  std::map<std::string, int> id_of;
  std::vector<std::string> name_of;
  auto intern = [&](const std::string& name) {
    auto it = id_of.find(name);
    if (it != id_of.end()) return it->second;
    int id = static_cast<int>(name_of.size());
    id_of.emplace(name, id);
    name_of.push_back(name);
    return id;
  };
  std::set<std::string> idb;
  for (const Rule& r : program.rules) idb.insert(r.head.predicate);
  for (const std::string& p : idb) intern(p);

  // Build edges among IDB predicates only; EDB predicates cannot be part
  // of cycles and live implicitly below stratum 0.
  std::vector<Edge> edges;
  for (const Rule& r : program.rules) {
    int head = intern(r.head.predicate);
    bool head_aggregates = r.HasAggregates();
    for (const Literal& lit : r.body) {
      if (lit.kind != Literal::Kind::kAtom &&
          lit.kind != Literal::Kind::kNegatedAtom) {
        continue;
      }
      if (idb.count(lit.atom.predicate) == 0) continue;
      bool strict =
          head_aggregates || lit.kind == Literal::Kind::kNegatedAtom;
      edges.push_back({intern(lit.atom.predicate), head, strict});
    }
  }

  const int n = static_cast<int>(name_of.size());
  std::vector<std::vector<int>> adj(n);
  for (const Edge& e : edges) adj[e.from].push_back(e.to);
  std::vector<int> component = TarjanScc(n, adj);
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);

  // Reject strict edges inside a component, naming the actual cycle: the
  // strict dependency hop followed by the shortest way back through the
  // component. `e.from -> e.to` reads "e.to depends on e.from".
  for (const Edge& e : edges) {
    if (e.strict && component[e.from] == component[e.to]) {
      std::vector<std::string> cycle{name_of[e.from]};
      for (int v : PathWithinComponent(e.to, e.from, adj, component,
                                       component[e.from])) {
        cycle.push_back(name_of[v]);
      }
      std::string path = cycle.front();
      for (size_t i = 1; i < cycle.size(); ++i) path += " -> " + cycle[i];
      if (negative_cycle != nullptr) *negative_cycle = std::move(cycle);
      return Status::InvalidArgument(
          "program is not stratifiable: predicate " + name_of[e.to] +
          " depends on " + name_of[e.from] +
          " through negation/aggregation inside the recursive cycle " + path);
    }
  }

  // Longest-path stratum levels over the component DAG.
  std::vector<std::vector<std::pair<int, bool>>> cadj(num_components);
  std::vector<int> indegree(num_components, 0);
  std::set<std::tuple<int, int, bool>> seen_edges;
  for (const Edge& e : edges) {
    int cf = component[e.from], ct = component[e.to];
    if (cf == ct) continue;
    if (!seen_edges.insert({cf, ct, e.strict}).second) continue;
    cadj[cf].push_back({ct, e.strict});
    ++indegree[ct];
  }
  std::vector<int> level(num_components, 0);
  std::vector<int> queue;
  for (int c = 0; c < num_components; ++c) {
    if (indegree[c] == 0) queue.push_back(c);
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int c = queue[qi];
    for (const auto& [to, strict] : cadj[c]) {
      level[to] = std::max(level[to], level[c] + (strict ? 1 : 0));
      if (--indegree[to] == 0) queue.push_back(to);
    }
  }

  // Group components by (level, then topological position) into strata;
  // components at the same level are still evaluated separately to keep
  // per-stratum rule sets small, ordered by dependency. We emit one
  // stratum per component, sorted by level then by reverse Tarjan order
  // (Tarjan emits reverse-topological component ids, so higher component
  // id = earlier in topological order).
  std::vector<int> order(num_components);
  for (int c = 0; c < num_components; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (level[a] != level[b]) return level[a] < level[b];
    return a > b;  // reverse Tarjan id = topological order
  });

  Stratification out;
  for (int c : order) {
    std::vector<std::string> members;
    for (int v = 0; v < n; ++v) {
      if (component[v] == c) members.push_back(name_of[v]);
    }
    std::sort(members.begin(), members.end());
    int stratum_index = static_cast<int>(out.strata.size());
    for (const std::string& m : members) out.stratum_of[m] = stratum_index;
    out.strata.push_back(std::move(members));
  }
  return out;
}

}  // namespace vada::datalog
