#include "datalog/snapshot_cache.h"

#include <utility>

namespace vada::datalog {

std::shared_ptr<const Database> SnapshotCache::Get(const KnowledgeBase& kb,
                                                   const std::string& name) {
  const uint64_t version = kb.relation_version(name);
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.version == version) {
      ++stats_.hits;
      if (hits_counter_ != nullptr) hits_counter_->Increment();
      return it->second.snapshot;
    }
  }

  // Miss: build outside the lock so a large copy does not serialize
  // concurrent lookups of other relations. Two workers racing on the
  // same relation build identical snapshots (the KB is not mutated
  // while scans run); last insert wins.
  const Relation* rel = kb.FindRelation(name);
  if (rel == nullptr) {
    MutexLock lock(mutex_);
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
    return nullptr;
  }
  auto snapshot = std::make_shared<Database>();
  snapshot->LoadRelation(*rel);

  MutexLock lock(mutex_);
  ++stats_.misses;
  if (misses_counter_ != nullptr) misses_counter_->Increment();
  entries_[name] = Entry{version, snapshot};
  return snapshot;
}

void SnapshotCache::Invalidate(const std::string& name) {
  MutexLock lock(mutex_);
  if (entries_.erase(name) > 0) ++stats_.invalidations;
}

void SnapshotCache::Clear() {
  MutexLock lock(mutex_);
  stats_.invalidations += entries_.size();
  entries_.clear();
}

size_t SnapshotCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

size_t SnapshotCache::ApproxIndexBytes() const {
  MutexLock lock(mutex_);
  size_t bytes = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.snapshot != nullptr) bytes += entry.snapshot->IndexBytes();
  }
  return bytes;
}

SnapshotCache::Stats SnapshotCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void SnapshotCache::SetCounters(obs::Counter* hits, obs::Counter* misses) {
  MutexLock lock(mutex_);
  hits_counter_ = hits;
  misses_counter_ = misses;
}

}  // namespace vada::datalog
