#include "datalog/planner.h"

#include <algorithm>
#include <set>
#include <string>

#include "datalog/database.h"

namespace vada::datalog {

namespace {

/// A negation, comparison or assignment whose variables are all bound is
/// a pure filter — schedule it as early as possible so it prunes the
/// join prefix instead of re-testing every extension.
bool IsReadyNonAtom(const Literal& l, const std::set<std::string>& bound) {
  switch (l.kind) {
    case Literal::Kind::kAtom:
      return false;
    case Literal::Kind::kNegatedAtom:
      for (const Term& t : l.atom.terms) {
        if (t.is_variable() && bound.count(t.var()) == 0) return false;
      }
      return true;
    case Literal::Kind::kComparison:
      if (l.lhs.is_variable() && bound.count(l.lhs.var()) == 0) return false;
      if (l.rhs.is_variable() && bound.count(l.rhs.var()) == 0) return false;
      return true;
    case Literal::Kind::kAssignment:
      if (l.lhs.is_variable() && bound.count(l.lhs.var()) == 0) return false;
      if (l.arith_op != ArithOp::kNone && l.rhs.is_variable() &&
          bound.count(l.rhs.var()) == 0) {
        return false;
      }
      return true;
  }
  return false;
}

void BindVars(const Literal& l, std::set<std::string>* bound) {
  switch (l.kind) {
    case Literal::Kind::kAtom:
      for (const Term& t : l.atom.terms) {
        if (t.is_variable()) bound->insert(t.var());
      }
      break;
    case Literal::Kind::kAssignment:
      bound->insert(l.assign_var);
      break;
    case Literal::Kind::kNegatedAtom:
    case Literal::Kind::kComparison:
      break;
  }
}

size_t BoundTermCount(const Literal& l, const std::set<std::string>& bound) {
  size_t n = 0;
  for (const Term& t : l.atom.terms) {
    if (t.is_constant() || (t.is_variable() && bound.count(t.var()) > 0)) ++n;
  }
  return n;
}

/// Estimated candidate count of evaluating `l` next: the relation's
/// cardinality shrunk by 8x per bound position (a crude equality
/// selectivity), floored at 1 unless the relation is empty. A fully
/// bound atom degenerates to a containment check and costs 0, which is
/// what puts all-constant atoms (and empty relations) first.
/// A relation with no facts yet falls back to the static cardinality
/// prior from the dataflow analysis when one exists (IDB predicates at
/// stratum-compile time always count 0); `*prior_used` reports the
/// prior consulted, 0 when runtime stats decided.
size_t EstimatedCost(const Literal& l, const Database& db,
                     const PlannerOptions& options,
                     const std::set<std::string>& bound,
                     size_t* prior_used) {
  *prior_used = 0;
  size_t card = db.FactCount(l.atom.predicate);
  if (card == 0 && options.priors != nullptr) {
    auto it = options.priors->find(l.atom.predicate);
    if (it != options.priors->end()) {
      card = it->second;
      *prior_used = card;
    }
  }
  if (card == 0) return 0;
  size_t n = BoundTermCount(l, bound);
  if (n >= l.atom.terms.size() && !l.atom.terms.empty()) return 0;
  size_t shift = std::min<size_t>(3 * n, 62);
  size_t cost = card >> shift;
  return std::max<size_t>(cost, 1);
}

}  // namespace

std::vector<size_t> PlanBodyOrder(const Rule& rule, const Database* db,
                                  const PlannerOptions& options,
                                  std::vector<LiteralPlan>* plan) {
  const bool cost_based = options.reorder && db != nullptr;
  std::vector<size_t> pending;
  pending.reserve(rule.body.size());
  for (size_t i = 0; i < rule.body.size(); ++i) pending.push_back(i);

  if (plan != nullptr) {
    plan->clear();
    plan->reserve(rule.body.size());
  }
  std::set<std::string> bound;
  std::vector<size_t> ordered;
  ordered.reserve(rule.body.size());
  auto place = [&](size_t pending_pos, size_t estimated_cost,
                   size_t static_prior) {
    size_t body_index = pending[pending_pos];
    ordered.push_back(body_index);
    if (plan != nullptr) {
      const Literal& l = rule.body[body_index];
      size_t bound_terms =
          l.kind == Literal::Kind::kAtom || l.kind == Literal::Kind::kNegatedAtom
              ? BoundTermCount(l, bound)
              : 0;
      plan->push_back(
          LiteralPlan{body_index, estimated_cost, bound_terms, static_prior});
    }
    BindVars(rule.body[body_index], &bound);
    pending.erase(pending.begin() + pending_pos);
  };

  while (!pending.empty()) {
    // 1. Any ready builtin/negation?
    bool placed = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (IsReadyNonAtom(rule.body[pending[i]], bound)) {
        place(i, 0, 0);
        placed = true;
        break;
      }
    }
    if (placed) continue;
    // 2. Cheapest positive atom. Ties fall back to declared order in
    // both modes, so planning is deterministic.
    int best = -1;
    size_t best_cost = 0;
    size_t best_prior = 0;
    if (cost_based) {
      size_t best_bound = 0;
      for (size_t i = 0; i < pending.size(); ++i) {
        const Literal& l = rule.body[pending[i]];
        if (l.kind != Literal::Kind::kAtom) continue;
        size_t prior_used = 0;
        size_t cost = EstimatedCost(l, *db, options, bound, &prior_used);
        size_t bound_terms = BoundTermCount(l, bound);
        if (best < 0 || cost < best_cost ||
            (cost == best_cost && bound_terms > best_bound)) {
          best = static_cast<int>(i);
          best_cost = cost;
          best_bound = bound_terms;
          best_prior = prior_used;
        }
      }
    } else {
      int best_score = -1;
      for (size_t i = 0; i < pending.size(); ++i) {
        const Literal& l = rule.body[pending[i]];
        if (l.kind != Literal::Kind::kAtom) continue;
        int score = static_cast<int>(BoundTermCount(l, bound));
        if (score > best_score) {
          best_score = score;
          best = static_cast<int>(i);
        }
      }
    }
    if (best >= 0) {
      place(static_cast<size_t>(best), best_cost, best_prior);
      continue;
    }
    // 3. Only non-ready builtins/negations left. Program validation
    // guarantees this cannot happen for safe rules; emit in order as a
    // defensive fallback.
    place(0, 0, 0);
  }
  return ordered;
}

}  // namespace vada::datalog
