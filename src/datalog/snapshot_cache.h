#ifndef VADA_DATALOG_SNAPSHOT_CACHE_H_
#define VADA_DATALOG_SNAPSHOT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "datalog/database.h"
#include "kb/knowledge_base.h"
#include "obs/metrics.h"

namespace vada::datalog {

/// Version-keyed cache of per-relation `Database` snapshots.
///
/// Every orchestration step re-runs the dependency queries of every
/// candidate transducer, and each query snapshots the relations it
/// reads out of the knowledge base. Between steps only the relations a
/// transducer just wrote actually change, so most of that copying is
/// redundant — this cache keeps one immutable single-relation snapshot
/// per relation, keyed by the KB's per-relation version counter, and
/// rebuilds an entry only when its version moved.
///
/// Keying invariant: a cached snapshot for (name, v) is byte-equivalent
/// to the relation's contents whenever `kb.relation_version(name) == v`.
/// This holds because every KnowledgeBase mutation bumps the relation's
/// version, versions are allocated from the global counter (so a
/// dropped-and-recreated relation can never reuse an old version), and
/// `WriteGuard::Rollback` restores contents and version counters
/// together. Callers that roll back should still call `Invalidate` on
/// the touched relations — it is free, and it keeps the cache correct
/// even if a future mutation path forgets to bump.
///
/// Composite join indexes (Database::EnsureBoundIndex) live on the
/// snapshot databases themselves, so every evaluation borrowing one
/// snapshot shares one lazily built index; dropping or rebuilding a
/// snapshot drops its indexes with it.
///
/// Thread-safe: `Get` may be called concurrently from pool workers
/// (eligibility scans share one cache); snapshots are returned as
/// `shared_ptr<const Database>` and are immutable after construction.
class SnapshotCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  SnapshotCache() = default;

  /// Returns an immutable snapshot of relation `name` at its current
  /// version, building and caching it on miss. Returns nullptr when the
  /// relation does not exist (negative result is not cached: absence is
  /// cheap to re-check and has no version to key on).
  std::shared_ptr<const Database> Get(const KnowledgeBase& kb,
                                      const std::string& name);

  /// Drops the cached snapshot for `name`, if any.
  void Invalidate(const std::string& name);

  /// Drops every cached snapshot.
  void Clear();

  /// Number of relations currently cached.
  size_t size() const;

  /// Approximate resident bytes of the composite join indexes built on
  /// the cached snapshots (the only place persistent composite indexes
  /// live — per-evaluation databases are discarded with their run).
  size_t ApproxIndexBytes() const;

  Stats stats() const;

  /// Optional observability hookup: when set, hits and misses are also
  /// counted on these metrics (`vada_snapshot_cache_{hits,misses}_total`).
  /// Either pointer may be null. Not owned.
  void SetCounters(obs::Counter* hits, obs::Counter* misses);

 private:
  struct Entry {
    uint64_t version = 0;
    std::shared_ptr<const Database> snapshot;
  };

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ VADA_GUARDED_BY(mutex_);
  Stats stats_ VADA_GUARDED_BY(mutex_);
  obs::Counter* hits_counter_ VADA_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* misses_counter_ VADA_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_SNAPSHOT_CACHE_H_
