#ifndef VADA_DATALOG_DIFFERENTIAL_H_
#define VADA_DATALOG_DIFFERENTIAL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/stratify.h"

namespace vada::datalog {

/// Tuple-level changes to one predicate's base (EDB) facts.
struct DeltaRows {
  std::vector<Tuple> inserts;
  std::vector<Tuple> retracts;
};

/// One batch of base-fact changes, keyed by predicate.
using RelationDelta = std::map<std::string, DeltaRows>;

struct DifferentialOptions {
  /// Options for the full evaluations the maintainer still performs
  /// (initialization, per-stratum recomputation, full fallback). The
  /// incremental paths are sequential; a pool only accelerates the
  /// full paths, bit-identically (DESIGN.md §5e).
  EvalOptions eval;
  /// ApplyDelta falls back to one full re-evaluation when a batch
  /// changes more than this fraction of the stored base facts
  /// (incremental bookkeeping would cost more than it saves). <= 0
  /// forces every batch down the full path.
  double max_delta_fraction = 0.25;
};

/// Counters describing differential maintenance (feed `vada_delta_*`).
struct DeltaStats {
  size_t applies = 0;            ///< ApplyDelta calls
  size_t full_fallbacks = 0;     ///< batches re-evaluated from scratch
  size_t strata_skipped = 0;     ///< strata with no changed inputs
  size_t strata_counting = 0;    ///< strata maintained by counting
  size_t strata_monotone = 0;    ///< strata continued semi-naively
  size_t strata_recomputed = 0;  ///< strata recomputed and diffed
  size_t facts_inserted = 0;     ///< net fact-presence gains applied
  size_t facts_retracted = 0;    ///< net fact-presence losses applied
  EvalStats eval;                ///< join work of the maintenance itself
};

/// Incremental Datalog maintenance (DESIGN.md §5k): materializes a
/// program's fixpoint once, then keeps it consistent under batches of
/// base-fact insertions and retractions for a fraction of the original
/// join work — the engine behind "what changed since version V".
///
///   DifferentialEvaluator diff(program);
///   diff.Prepare();
///   diff.Initialize(edb);                 // one full evaluation
///   diff.ApplyDelta({{"e0", {.inserts = {t}}}});   // pay-as-you-go
///   diff.database().facts("tc");          // maintained fixpoint
///
/// Per stratum, ApplyDelta picks the cheapest sound strategy:
///  * skip — no input of the stratum changed;
///  * counting — non-recursive strata without negation/aggregates keep
///    an exact derivation count per fact and sweep each rule once per
///    changed body occurrence (old/new delta decomposition), handling
///    inserts and retracts symmetrically;
///  * monotone — recursive positive strata under insert-only deltas
///    continue the semi-naive fixpoint from the insertions
///    (Evaluator::RunIncrement);
///  * recompute — strata with negation or aggregates, and recursive
///    strata hit by retracts, are re-evaluated in isolation from their
///    (maintained) inputs and diffed against the previous state.
/// Whole batches above DifferentialOptions::max_delta_fraction fall
/// back to one full re-evaluation. Every path yields the same fact
/// sets as evaluating the changed base from scratch (the 500-program
/// delta fuzz harness asserts this bit-for-bit, order-normalized), and
/// results are identical with or without a thread pool.
///
/// Snapshots: each ApplyDelta publishes a fresh Database that borrows
/// all unchanged predicates from the previous snapshot (zero-copy,
/// datalog/database.h) and rebuilds only the changed ones, so holding
/// `snapshot()` across applies is cheap and safe.
class DifferentialEvaluator {
 public:
  explicit DifferentialEvaluator(Program program,
                                 DifferentialOptions options = {});
  ~DifferentialEvaluator();

  DifferentialEvaluator(const DifferentialEvaluator&) = delete;
  DifferentialEvaluator& operator=(const DifferentialEvaluator&) = delete;

  /// Validates, stratifies, classifies strata and compiles counting
  /// sweeps. Must be called once before Initialize.
  Status Prepare();

  /// Evaluates the program over `edb` in full and records the base
  /// facts + derivation counts that later deltas are applied against.
  /// Callable again to re-seed from a new base.
  Status Initialize(const Database& edb, DeltaStats* stats = nullptr);

  /// Applies one batch of base-fact changes, updating the materialized
  /// fixpoint. Rows already present insert as no-ops, absent rows
  /// retract as no-ops; a row in both lists of one batch nets out.
  /// Pre-condition: Initialize() returned OK.
  Status ApplyDelta(const RelationDelta& delta, DeltaStats* stats = nullptr);

  /// The maintained fixpoint. Pre-condition: Initialize() returned OK.
  const Database& database() const { return *current_; }
  std::shared_ptr<const Database> snapshot() const { return current_; }

  /// Lifetime totals across Initialize/ApplyDelta calls.
  const DeltaStats& lifetime_stats() const { return lifetime_; }

  /// EXPLAIN surface: the per-stratum strategy decisions of the most
  /// recent ApplyDelta ("delta plan" vs "full plan"; DESIGN.md §5k).
  const std::string& last_plan() const { return last_plan_; }

 private:
  // -- compiled counting sweeps --------------------------------------
  struct SweepTerm {
    bool is_var = false;
    int slot = -1;
    SymbolId const_id = kNoSymbol;
    Value constant;
  };
  struct SweepLit {
    Literal::Kind kind = Literal::Kind::kAtom;
    std::string predicate;          // kAtom
    std::vector<SweepTerm> terms;   // kAtom
    CompareOp compare_op = CompareOp::kEq;
    ArithOp arith_op = ArithOp::kNone;
    SweepTerm lhs, rhs;
    int assign_slot = -1;
  };
  struct SweepRule {
    std::string head_pred;
    std::vector<SweepTerm> head;
    std::vector<SweepLit> body;          // safe execution order
    std::vector<size_t> atom_positions;  // body indexes of positive atoms
    int num_slots = 0;
  };

  // -- per-fact maintenance state ------------------------------------
  using Row = std::vector<SymbolId>;
  struct FactInfo {
    bool base = false;    ///< present as a base (EDB) fact
    int64_t count = 0;    ///< derivation count (counting strata) or
                          ///< derived-presence marker (other strata)
    bool Present() const { return base || count > 0; }
  };
  struct PredState {
    size_t arity = 0;
    bool arity_set = false;
    /// Ordered map: deterministic iteration makes rebuilt stores and
    /// fallback re-evaluations reproducible.
    std::map<Row, FactInfo> rows;
  };
  struct PredDelta {
    std::vector<Row> inserts;
    std::vector<Row> retracts;
  };
  /// Pending presence change of one row: a derivation-count delta
  /// and/or a base-flag write, combined so presence flips once.
  struct RowChange {
    int64_t count_delta = 0;
    int base_set = -1;  // -1 unchanged, else 0/1
  };

  enum class StratumMode { kCounting, kMonotone, kComplex };
  struct StratumInfo {
    std::vector<std::string> preds;    // head predicates, sorted
    std::set<std::string> pred_set;
    std::vector<const Rule*> rules;
    std::set<std::string> input_preds;  // body preds outside the stratum
    StratumMode mode = StratumMode::kComplex;
    bool has_negation_or_aggregates = false;
    std::vector<SweepRule> sweeps;     // kCounting only
    Program sub_program;               // this stratum's rules
    std::unique_ptr<Evaluator> sub_eval;
  };

  bool CompileSweep(const Rule& rule, SweepRule* out) const;
  /// Enumerates the solutions of `rule` with atom occurrence
  /// `target_atom` ranging over `delta_rows`, occurrences before it
  /// reading `new_db` and after it reading `old_db` (the telescoping
  /// delta decomposition); `target_atom` == npos enumerates in full
  /// against `new_db`. Calls `emit(head_row)` per solution.
  template <typename Emit>
  void SweepSolutions(const SweepRule& rule, const Database& new_db,
                      const Database* old_db, size_t target_atom,
                      const std::vector<Row>* delta_rows, EvalStats* st,
                      const Emit& emit) const;

  /// `stage` holds base-fact flips targeting this stratum's own head
  /// predicates (IDB facts fed directly from outside), keyed by
  /// predicate; `pending` accumulates the presence changes of every
  /// predicate processed so far this batch (inputs in, own preds out).
  using Stage = std::map<std::string, PredDelta>;
  Status ApplyCounting(StratumInfo* si, Database* next,
                       std::map<std::string, PredDelta>* pending,
                       const Stage* stage, DeltaStats* st);
  Status ApplyMonotone(StratumInfo* si, Database* next,
                       std::map<std::string, PredDelta>* pending,
                       const Stage* stage, DeltaStats* st);
  Status Recompute(StratumInfo* si, Database* next,
                   std::map<std::string, PredDelta>* pending,
                   const Stage* stage, DeltaStats* st);
  Status FullRebuild(DeltaStats* st);
  /// Reseeds derivation counts / presence markers from a freshly
  /// evaluated database (Initialize and the full-fallback path).
  Status RebuildDerivedState(const Database& db, EvalStats* st);
  /// Rebuilds `pred`'s store in `next` from the maintenance state
  /// (required when rows disappeared; plain COW inserts otherwise).
  void RebuildPredicate(Database* next, const std::string& pred);
  void ApplyRowChanges(const std::string& pred,
                       const std::map<Row, RowChange>& changes,
                       Database* next, PredDelta* out, DeltaStats* st);

  size_t BaseRowCount() const;

  Program program_;
  DifferentialOptions opts_;
  Stratification stratification_;
  std::vector<StratumInfo> strata_;
  std::map<std::string, size_t> stratum_of_;  // head pred -> strata_ index
  std::unique_ptr<Evaluator> full_eval_;
  std::map<std::string, PredState> state_;
  std::shared_ptr<const Database> current_;
  DeltaStats lifetime_;
  std::string last_plan_;
  bool prepared_ = false;
  bool initialized_ = false;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_DIFFERENTIAL_H_
