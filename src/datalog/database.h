#ifndef VADA_DATALOG_DATABASE_H_
#define VADA_DATALOG_DATABASE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/relation.h"
#include "kb/tuple.h"

namespace vada::datalog {

/// Fact storage for the Datalog engine: predicate name -> set of tuples,
/// with hash indexes on every column position so joins can seek instead
/// of scan. Tuples of one predicate must share an arity (checked).
class Database {
 public:
  Database() = default;

  /// Inserts `t`; returns whether it was new. Establishes the predicate's
  /// arity on first insert; later arity mismatches are ignored and return
  /// false (callers go through validated rules so this is defensive).
  bool Insert(const std::string& predicate, Tuple t);

  /// Loads every row of `relation` under its relation name.
  void LoadRelation(const Relation& relation);

  bool Contains(const std::string& predicate, const Tuple& t) const;

  /// All facts of `predicate` in insertion order; empty for unknown.
  const std::vector<Tuple>& facts(const std::string& predicate) const;

  /// Indexes of facts whose column `position` equals `value`; nullptr
  /// when the predicate is unknown, the position is out of range or no
  /// fact matches.
  const std::vector<size_t>* Lookup(const std::string& predicate,
                                    size_t position, const Value& value) const;

  size_t FactCount(const std::string& predicate) const;
  size_t TotalFacts() const;

  /// Known predicate names, sorted.
  std::vector<std::string> Predicates() const;

  void Clear();

 private:
  struct PredicateStore {
    size_t arity = 0;
    bool arity_set = false;
    std::vector<Tuple> facts;
    std::unordered_set<Tuple, TupleHash> set;
    // indexes[pos][value] -> fact indexes
    std::vector<std::unordered_map<Value, std::vector<size_t>, ValueHash>>
        indexes;
  };

  std::map<std::string, PredicateStore> stores_;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_DATABASE_H_
