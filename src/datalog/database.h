#ifndef VADA_DATALOG_DATABASE_H_
#define VADA_DATALOG_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "datalog/symbol_table.h"
#include "kb/relation.h"
#include "kb/tuple.h"

namespace vada::datalog {

/// Hash functor over a composite index key (the symbol ids of the bound
/// columns, in bound-position order).
struct IdKeyHash {
  size_t operator()(const std::vector<SymbolId>& key) const {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a over the id words
    for (SymbolId id : key) {
      h ^= id;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Composite hash index over one predicate: maps the projection of a
/// fact's symbol ids onto a fixed set of column positions to the
/// insertion-order indexes of the matching facts. Bucket vectors keep
/// insertion order, so probing an index enumerates exactly the facts a
/// scan would, in the same order — the property that makes indexed
/// evaluation bit-identical to scanning (DESIGN.md §5f). Keys are ids,
/// not Values: a probe hashes a handful of uint32s (DESIGN.md §5j).
struct BoundIndex {
  std::unordered_map<std::vector<SymbolId>, std::vector<uint32_t>, IdKeyHash>
      buckets;
  /// Approximate resident size, computed once at build time (the index
  /// is immutable afterwards). Feeds `vada_index_bytes` (DESIGN.md §5g).
  size_t approx_bytes = 0;
};

/// Fact storage for the Datalog engine, columnar over the process-wide
/// SymbolTable (DESIGN.md §5j): each predicate stores one uint32 symbol
/// id vector per column, in insertion order, plus a row-level dedup
/// table, eager per-column id indexes, and lazy composite indexes per
/// (predicate, bound-position-set) so joins can seek on their whole
/// bound prefix. The evaluator's probe loops run entirely on ids;
/// `facts()` materializes Values only at the KB/provenance boundary.
/// Tuples of one predicate must share an arity (checked).
///
/// A database can additionally *borrow* predicates from immutable shared
/// snapshots (AttachShared): reads see the shared store without copying
/// a single id, and the first write to a borrowed predicate detaches it
/// by deep copy (a memcpy of id vectors — no string traffic). This is
/// what lets the snapshot cache hand one per-relation snapshot to many
/// concurrent evaluations.
class Database {
 public:
  Database();

  /// Copies columns and borrowed views; composite indexes are *not*
  /// copied — the copy rebuilds its own lazily on first probe.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  /// Inserts `t`, interning its values; returns whether it was new.
  /// Establishes the predicate's arity on first insert; later arity
  /// mismatches are ignored and return false (callers go through
  /// validated rules so this is defensive). Writing to a predicate
  /// borrowed via AttachShared first detaches it (copy-on-write), so
  /// the shared snapshot is never mutated.
  bool Insert(const std::string& predicate, const Tuple& t);

  /// Id-level insert: `ids[0..n)` are symbol ids from the global table.
  /// Same semantics as Insert; this is the evaluator's hot path (derived
  /// facts arrive as ids and are stored without materializing a Value).
  bool InsertIds(const std::string& predicate, const SymbolId* ids, size_t n);

  /// Loads every row of `relation` under its relation name (the KB ->
  /// engine boundary: values are interned here, once per load).
  void LoadRelation(const Relation& relation);

  /// Borrows every predicate of `base` as a read-only view backed by the
  /// shared snapshot (kept alive by the stored shared_ptr). Predicates
  /// this database already owns or borrows are left untouched — first
  /// binding wins, matching LoadReferencedRelations' dedup semantics.
  void AttachShared(std::shared_ptr<const Database> base);

  bool Contains(const std::string& predicate, const Tuple& t) const;

  /// All facts of `predicate` in insertion order, materialized from the
  /// column store; empty for unknown. This is a boundary API (KB
  /// write-back, provenance, tests, Query results) — the evaluator reads
  /// columns through View instead and never pays for materialization.
  std::vector<Tuple> facts(const std::string& predicate) const;

  /// Zero-copy columnar read access to one predicate (owned or
  /// borrowed). Invalid view (`!valid()`) for unknown predicates. The
  /// view borrows the store: callers must not hold it across mutations
  /// of this database.
  class View {
   public:
    View() = default;
    bool valid() const { return store_ != nullptr; }
    size_t rows() const;
    size_t arity() const;
    /// Column `pos` as a dense id vector of length rows().
    /// Pre-condition: pos < arity().
    const SymbolId* column(size_t pos) const;
    /// Insertion-order indexes of facts whose column `position` equals
    /// `id`; nullptr when the position is out of range or nothing
    /// matches (the eager single-column seek path).
    const std::vector<uint32_t>* LookupId(size_t position, SymbolId id) const;
    /// Whether the fact with exactly these ids (length must equal
    /// arity()) is stored.
    bool ContainsIds(const SymbolId* ids) const;

   private:
    friend class Database;
    struct PredicateStoreTag;
    explicit View(const void* store) : store_(store) {}
    const void* store_ = nullptr;  // const PredicateStore*
  };

  /// View of `predicate`'s store; invalid when unknown.
  View view(const std::string& predicate) const;

  /// Returns the composite hash index of `predicate` over the column
  /// set `positions` (sorted, non-empty), building it lazily on first
  /// request. nullptr when the predicate is unknown or any position is
  /// out of range. `*built` is incremented iff this call performed the
  /// build (each index is built at most once per invalidation cycle).
  ///
  /// Borrowed predicates delegate to the owning snapshot database, so
  /// every evaluation sharing one snapshot (via SnapshotCache /
  /// AttachShared) shares one index. Thread-safe: concurrent const
  /// callers may race to build; the returned index is immutable until
  /// the next Insert into the predicate (or Clear), which drops the
  /// predicate's composite indexes. Callers must not hold the pointer
  /// across mutations.
  const BoundIndex* EnsureBoundIndex(const std::string& predicate,
                                     const std::vector<size_t>& positions,
                                     size_t* built = nullptr) const;

  size_t FactCount(const std::string& predicate) const;
  size_t TotalFacts() const;

  /// Approximate resident bytes of one owned predicate's columnar
  /// storage (id columns, dedup table, eager per-column indexes); 0 for
  /// unknown or borrowed predicates — borrowed storage is owned (and
  /// counted) by the snapshot database. Symbol payloads (the strings
  /// behind the ids) live in the shared SymbolTable and are reported by
  /// `vada_symtab_bytes`, not here.
  size_t ApproxBytes(const std::string& predicate) const;

  /// Sum of ApproxBytes over every owned predicate.
  size_t ApproxBytes() const;

  /// Approximate resident bytes of the lazily built composite indexes
  /// this database owns (borrowers' indexes live on, and are counted
  /// by, the owning snapshot).
  size_t IndexBytes() const;

  /// Known predicate names (owned and borrowed), sorted.
  std::vector<std::string> Predicates() const;

  /// Forgets `predicate` entirely — owned store, borrowed view and
  /// composite indexes — so it can be rebuilt from scratch (the
  /// differential evaluator's retract path: deletion is rebuild, the
  /// columnar store has no row removal). No-op when unknown.
  void ResetPredicate(const std::string& predicate);

  void Clear();

 private:
  struct PredicateStore {
    size_t arity = 0;
    bool arity_set = false;
    size_t rows = 0;
    /// arity column vectors, each `rows` long, in insertion order.
    std::vector<std::vector<SymbolId>> columns;
    /// Row-level dedup: 64-bit row hash -> insertion-order row indexes
    /// (chained; collisions resolved by comparing the id row).
    std::unordered_map<uint64_t, std::vector<uint32_t>> dedup;
    /// Eager single-column indexes: per position, id -> row indexes.
    std::vector<std::unordered_map<SymbolId, std::vector<uint32_t>>> indexes;

    bool RowEquals(uint32_t row, const SymbolId* ids) const {
      for (size_t pos = 0; pos < arity; ++pos) {
        if (columns[pos][row] != ids[pos]) return false;
      }
      return true;
    }
  };

  struct SharedView {
    std::shared_ptr<const Database> owner;  // keepalive
    const PredicateStore* store = nullptr;
  };

  /// Lazily built composite indexes of the *owned* stores, keyed by
  /// (predicate, position set). Guarded by its mutex so concurrent
  /// read-only evaluations sharing this database (snapshot borrowers
  /// delegate here) can build on demand; entries for a predicate are
  /// dropped by Insert/Clear. Held behind a unique_ptr so the Database
  /// stays movable.
  struct IndexCache {
    Mutex mutex;
    std::map<std::string, std::map<std::vector<size_t>, BoundIndex>> entries
        VADA_GUARDED_BY(mutex);
  };

  static uint64_t RowHash(const SymbolId* ids, size_t n) {
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < n; ++i) {
      h ^= ids[i];
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// Owned store if present, else borrowed store, else nullptr.
  const PredicateStore* Find(const std::string& predicate) const;

  std::map<std::string, PredicateStore> stores_;
  std::map<std::string, SharedView> shared_;
  std::unique_ptr<IndexCache> index_cache_;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_DATABASE_H_
