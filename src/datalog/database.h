#ifndef VADA_DATALOG_DATABASE_H_
#define VADA_DATALOG_DATABASE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "kb/relation.h"
#include "kb/tuple.h"

namespace vada::datalog {

/// Composite hash index over one predicate: maps the projection of a
/// fact onto a fixed set of column positions to the insertion-order
/// indexes of the matching facts. Bucket vectors keep insertion order,
/// so probing an index enumerates exactly the facts a scan would, in
/// the same order — the property that makes indexed evaluation
/// bit-identical to scanning (DESIGN.md §5f).
struct BoundIndex {
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> buckets;
  /// Approximate resident size, computed once at build time (the index
  /// is immutable afterwards). Feeds `vada_index_bytes` (DESIGN.md §5g).
  size_t approx_bytes = 0;
};

/// Fact storage for the Datalog engine: predicate name -> set of tuples,
/// with eager hash indexes on every single column position and lazy
/// composite indexes per (predicate, bound-position-set) so joins can
/// seek on their whole bound prefix instead of scanning. Tuples of one
/// predicate must share an arity (checked).
///
/// A database can additionally *borrow* predicates from immutable shared
/// snapshots (AttachShared): reads see the shared store without copying
/// a single tuple, and the first write to a borrowed predicate detaches
/// it by deep copy. This is what lets the snapshot cache hand one
/// per-relation snapshot to many concurrent evaluations.
class Database {
 public:
  Database();

  /// Copies facts and borrowed views; composite indexes are *not*
  /// copied — the copy rebuilds its own lazily on first probe.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  /// Inserts `t`; returns whether it was new. Establishes the predicate's
  /// arity on first insert; later arity mismatches are ignored and return
  /// false (callers go through validated rules so this is defensive).
  /// Writing to a predicate borrowed via AttachShared first detaches it
  /// (copy-on-write), so the shared snapshot is never mutated.
  bool Insert(const std::string& predicate, Tuple t);

  /// Loads every row of `relation` under its relation name.
  void LoadRelation(const Relation& relation);

  /// Borrows every predicate of `base` as a read-only view backed by the
  /// shared snapshot (kept alive by the stored shared_ptr). Predicates
  /// this database already owns or borrows are left untouched — first
  /// binding wins, matching LoadReferencedRelations' dedup semantics.
  void AttachShared(std::shared_ptr<const Database> base);

  bool Contains(const std::string& predicate, const Tuple& t) const;

  /// All facts of `predicate` in insertion order; empty for unknown.
  const std::vector<Tuple>& facts(const std::string& predicate) const;

  /// Indexes of facts whose column `position` equals `value`; nullptr
  /// when the predicate is unknown, the position is out of range or no
  /// fact matches.
  const std::vector<size_t>* Lookup(const std::string& predicate,
                                    size_t position, const Value& value) const;

  /// Returns the composite hash index of `predicate` over the column
  /// set `positions` (sorted, non-empty), building it lazily on first
  /// request. nullptr when the predicate is unknown or any position is
  /// out of range. `*built` is incremented iff this call performed the
  /// build (each index is built at most once per invalidation cycle).
  ///
  /// Borrowed predicates delegate to the owning snapshot database, so
  /// every evaluation sharing one snapshot (via SnapshotCache /
  /// AttachShared) shares one index. Thread-safe: concurrent const
  /// callers may race to build; the returned index is immutable until
  /// the next Insert into the predicate (or Clear), which drops the
  /// predicate's composite indexes. Callers must not hold the pointer
  /// across mutations.
  const BoundIndex* EnsureBoundIndex(const std::string& predicate,
                                     const std::vector<size_t>& positions,
                                     size_t* built = nullptr) const;

  size_t FactCount(const std::string& predicate) const;
  size_t TotalFacts() const;

  /// Approximate resident bytes of one owned predicate's fact storage
  /// (facts, dedup set, eager single-column indexes); 0 for unknown or
  /// borrowed predicates — borrowed storage is owned (and counted) by
  /// the snapshot database.
  size_t ApproxBytes(const std::string& predicate) const;

  /// Sum of ApproxBytes over every owned predicate.
  size_t ApproxBytes() const;

  /// Approximate resident bytes of the lazily built composite indexes
  /// this database owns (borrowers' indexes live on, and are counted
  /// by, the owning snapshot).
  size_t IndexBytes() const;

  /// Known predicate names (owned and borrowed), sorted.
  std::vector<std::string> Predicates() const;

  void Clear();

 private:
  struct PredicateStore {
    size_t arity = 0;
    bool arity_set = false;
    std::vector<Tuple> facts;
    std::unordered_set<Tuple, TupleHash> set;
    // indexes[pos][value] -> fact indexes
    std::vector<std::unordered_map<Value, std::vector<size_t>, ValueHash>>
        indexes;
  };

  struct SharedView {
    std::shared_ptr<const Database> owner;  // keepalive
    const PredicateStore* store = nullptr;
  };

  /// Lazily built composite indexes of the *owned* stores, keyed by
  /// (predicate, position set). Guarded by its mutex so concurrent
  /// read-only evaluations sharing this database (snapshot borrowers
  /// delegate here) can build on demand; entries for a predicate are
  /// dropped by Insert/Clear. Held behind a unique_ptr so the Database
  /// stays movable.
  struct IndexCache {
    Mutex mutex;
    std::map<std::string, std::map<std::vector<size_t>, BoundIndex>> entries
        VADA_GUARDED_BY(mutex);
  };

  /// Owned store if present, else borrowed store, else nullptr.
  const PredicateStore* Find(const std::string& predicate) const;

  std::map<std::string, PredicateStore> stores_;
  std::map<std::string, SharedView> shared_;
  std::unique_ptr<IndexCache> index_cache_;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_DATABASE_H_
