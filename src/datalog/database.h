#ifndef VADA_DATALOG_DATABASE_H_
#define VADA_DATALOG_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kb/relation.h"
#include "kb/tuple.h"

namespace vada::datalog {

/// Fact storage for the Datalog engine: predicate name -> set of tuples,
/// with hash indexes on every column position so joins can seek instead
/// of scan. Tuples of one predicate must share an arity (checked).
///
/// A database can additionally *borrow* predicates from immutable shared
/// snapshots (AttachShared): reads see the shared store without copying
/// a single tuple, and the first write to a borrowed predicate detaches
/// it by deep copy. This is what lets the snapshot cache hand one
/// per-relation snapshot to many concurrent evaluations.
class Database {
 public:
  Database() = default;

  /// Inserts `t`; returns whether it was new. Establishes the predicate's
  /// arity on first insert; later arity mismatches are ignored and return
  /// false (callers go through validated rules so this is defensive).
  /// Writing to a predicate borrowed via AttachShared first detaches it
  /// (copy-on-write), so the shared snapshot is never mutated.
  bool Insert(const std::string& predicate, Tuple t);

  /// Loads every row of `relation` under its relation name.
  void LoadRelation(const Relation& relation);

  /// Borrows every predicate of `base` as a read-only view backed by the
  /// shared snapshot (kept alive by the stored shared_ptr). Predicates
  /// this database already owns or borrows are left untouched — first
  /// binding wins, matching LoadReferencedRelations' dedup semantics.
  void AttachShared(std::shared_ptr<const Database> base);

  bool Contains(const std::string& predicate, const Tuple& t) const;

  /// All facts of `predicate` in insertion order; empty for unknown.
  const std::vector<Tuple>& facts(const std::string& predicate) const;

  /// Indexes of facts whose column `position` equals `value`; nullptr
  /// when the predicate is unknown, the position is out of range or no
  /// fact matches.
  const std::vector<size_t>* Lookup(const std::string& predicate,
                                    size_t position, const Value& value) const;

  size_t FactCount(const std::string& predicate) const;
  size_t TotalFacts() const;

  /// Known predicate names (owned and borrowed), sorted.
  std::vector<std::string> Predicates() const;

  void Clear();

 private:
  struct PredicateStore {
    size_t arity = 0;
    bool arity_set = false;
    std::vector<Tuple> facts;
    std::unordered_set<Tuple, TupleHash> set;
    // indexes[pos][value] -> fact indexes
    std::vector<std::unordered_map<Value, std::vector<size_t>, ValueHash>>
        indexes;
  };

  struct SharedView {
    std::shared_ptr<const Database> owner;  // keepalive
    const PredicateStore* store = nullptr;
  };

  /// Owned store if present, else borrowed store, else nullptr.
  const PredicateStore* Find(const std::string& predicate) const;

  std::map<std::string, PredicateStore> stores_;
  std::map<std::string, SharedView> shared_;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_DATABASE_H_
