#ifndef VADA_DATALOG_EXPLAIN_H_
#define VADA_DATALOG_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vada::datalog {

/// Actual join work attributed to one body literal under EXPLAIN
/// ANALYZE. The three probe counters are recorded at exactly the same
/// sites (with the same chunk-dedup rule) as the evaluator's JoinWork,
/// so summing them over a plan reproduces the run's EvalStats join
/// counters — the reconciliation invariant explain_test asserts.
struct LiteralRuntime {
  uint64_t scan_probes = 0;      ///< candidate facts scanned (non-indexed)
  uint64_t index_probes = 0;     ///< composite hash-index lookups
  uint64_t index_candidates = 0; ///< facts enumerated from index buckets
  /// Inclusive wall time: this literal *and* everything nested inside
  /// it in the join tree. Summed across parallel chunks, so it can
  /// exceed the rule's wall time under a pool (it is CPU-time-like).
  uint64_t time_ns = 0;

  void Add(const LiteralRuntime& o) {
    scan_probes += o.scan_probes;
    index_probes += o.index_probes;
    index_candidates += o.index_candidates;
    time_ns += o.time_ns;
  }
};

/// One body literal in the execution order the planner chose.
struct LiteralExplain {
  size_t body_index = 0;    ///< position in the rule's *declared* body
  std::string text;         ///< source rendering of the literal
  std::string kind;         ///< "atom"|"negation"|"comparison"|"assignment"
  /// Ground column positions at literal entry (the composite index key
  /// set); empty for non-atoms and for atoms with nothing bound.
  std::vector<size_t> bound_positions;
  /// The planner's candidate-count estimate when it placed this literal
  /// (atoms only; see planner.cc EstimatedCost).
  size_t estimated_cost = 0;
  /// Static cardinality bound from the dataflow analysis that stood in
  /// for the runtime fact count (the relation was empty at compile
  /// time); 0 when the estimate came from observed facts. Rendered next
  /// to the actual counters so inferred and observed numbers can be
  /// compared side by side.
  size_t static_prior = 0;
  /// Predicted access path against the stratum-start database:
  /// "index" (composite bound-prefix hash index), "seek" (eager
  /// single-column index), "scan" (full relation), "check" (negation
  /// containment test), "filter" (comparison/assignment). Delta-
  /// restricted recursive occurrences may resolve differently at run
  /// time; the actual counters below tell the true story.
  std::string access;
  /// EXPLAIN ANALYZE only; all-zero in a plain EXPLAIN.
  LiteralRuntime actual;
};

struct RuleExplain {
  std::string text;
  bool aggregate = false;
  std::vector<LiteralExplain> literals;  ///< in execution order
  uint64_t applications = 0;             ///< ANALYZE: body evaluations
  uint64_t facts_derived = 0;            ///< ANALYZE: new head facts
};

struct StratumExplain {
  std::vector<std::string> predicates;
  std::vector<RuleExplain> rules;
};

/// The full plan of one program, one entry per stratum. Produced by
/// Evaluator::Explain; estimates in a plain EXPLAIN use the database
/// as-is for *every* stratum (a run would see earlier strata's derived
/// facts), while EXPLAIN ANALYZE compiles each stratum against its true
/// stratum-start state because it actually runs.
struct PlanExplain {
  bool analyzed = false;
  std::vector<StratumExplain> strata;

  /// Sum of the per-literal actuals (ANALYZE); zero otherwise.
  LiteralRuntime Totals() const;

  /// Indented text tree, one line per stratum/rule/literal.
  std::string ToText() const;

  /// Machine-readable rendering of the same tree.
  std::string ToJson() const;
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_EXPLAIN_H_
