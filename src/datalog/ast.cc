#include "datalog/ast.h"

#include <set>

namespace vada::datalog {

std::string SourcePos::ToString() const {
  if (!known()) return "unknown position";
  return "line " + std::to_string(line) + ", col " + std::to_string(col);
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

Term Term::Constant(Value v) {
  Term t;
  t.kind_ = Kind::kConstant;
  t.value_ = std::move(v);
  return t;
}

Term Term::Variable(std::string name) {
  Term t;
  t.kind_ = Kind::kVariable;
  t.var_ = std::move(name);
  return t;
}

Term Term::Aggregate(AggFunc func, std::string var) {
  Term t;
  t.kind_ = Kind::kAggregate;
  t.agg_func_ = func;
  t.var_ = std::move(var);
  return t;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kConstant:
      return value_.ToLiteral();
    case Kind::kVariable:
      return var_;
    case Kind::kAggregate:
      return std::string(AggFuncName(agg_func_)) + "<" + var_ + ">";
  }
  return "?";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Term::Kind::kConstant:
      return a.value_ == b.value_;
    case Term::Kind::kVariable:
      return a.var_ == b.var_;
    case Term::Kind::kAggregate:
      return a.agg_func_ == b.agg_func_ && a.var_ == b.var_;
  }
  return false;
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {
const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kNone:
      return "";
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}
}  // namespace

Literal Literal::Positive(Atom a) {
  Literal l;
  l.kind = Kind::kAtom;
  l.atom = std::move(a);
  return l;
}

Literal Literal::Negative(Atom a) {
  Literal l;
  l.kind = Kind::kNegatedAtom;
  l.atom = std::move(a);
  return l;
}

Literal Literal::Comparison(Term lhs, CompareOp op, Term rhs) {
  Literal l;
  l.kind = Kind::kComparison;
  l.lhs = std::move(lhs);
  l.compare_op = op;
  l.rhs = std::move(rhs);
  return l;
}

Literal Literal::Assignment(std::string var, Term operand1, ArithOp op,
                            Term operand2) {
  Literal l;
  l.kind = Kind::kAssignment;
  l.assign_var = std::move(var);
  l.lhs = std::move(operand1);
  l.arith_op = op;
  l.rhs = std::move(operand2);
  return l;
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString();
    case Kind::kNegatedAtom:
      return "not " + atom.ToString();
    case Kind::kComparison:
      return lhs.ToString() + " " + CompareOpName(compare_op) + " " +
             rhs.ToString();
    case Kind::kAssignment: {
      std::string out = assign_var + " = " + lhs.ToString();
      if (arith_op != ArithOp::kNone) {
        out += std::string(" ") + ArithOpName(arith_op) + " " + rhs.ToString();
      }
      return out;
    }
  }
  return "?";
}

bool Rule::HasAggregates() const {
  for (const Term& t : head.terms) {
    if (t.is_aggregate()) return true;
  }
  return false;
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString();
    }
  }
  out += ".";
  return out;
}

std::vector<std::string> Program::HeadPredicates() const {
  std::set<std::string> seen;
  std::vector<std::string> out;
  for (const Rule& r : rules) {
    if (seen.insert(r.head.predicate).second) out.push_back(r.head.predicate);
  }
  return out;
}

Status ValidateRule(const Rule& rule) {
  if (rule.head.predicate.empty()) {
    return Status::InvalidArgument("rule has empty head predicate");
  }
  // Aggregates may appear only in heads; body terms must not be aggregates.
  for (const Literal& lit : rule.body) {
    if (lit.kind == Literal::Kind::kAtom ||
        lit.kind == Literal::Kind::kNegatedAtom) {
      for (const Term& t : lit.atom.terms) {
        if (t.is_aggregate()) {
          return Status::InvalidArgument("aggregate term in body of rule " +
                                         rule.ToString());
        }
      }
    } else {
      if (lit.lhs.is_aggregate() || lit.rhs.is_aggregate()) {
        return Status::InvalidArgument("aggregate term in builtin of rule " +
                                       rule.ToString());
      }
    }
  }

  // Compute the set of variables bindable by positive atoms and then by
  // assignments whose operands become bound (fixpoint).
  std::set<std::string> bound;
  for (const Literal& lit : rule.body) {
    if (lit.kind == Literal::Kind::kAtom) {
      for (const Term& t : lit.atom.terms) {
        if (t.is_variable()) bound.insert(t.var());
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAssignment) continue;
      if (bound.count(lit.assign_var) > 0) continue;
      bool operands_ok = (!lit.lhs.is_variable() || bound.count(lit.lhs.var())) &&
                         (lit.arith_op == ArithOp::kNone ||
                          !lit.rhs.is_variable() || bound.count(lit.rhs.var()));
      if (operands_ok) {
        bound.insert(lit.assign_var);
        changed = true;
      }
    }
  }

  auto require_bound = [&bound, &rule](const Term& t,
                                       const char* where) -> Status {
    if (t.is_variable() && bound.count(t.var()) == 0) {
      return Status::InvalidArgument("unsafe rule (" + rule.ToString() +
                                     "): variable " + t.var() + " in " + where +
                                     " is not bound by a positive atom");
    }
    return Status::OK();
  };

  for (const Term& t : rule.head.terms) {
    if (t.is_aggregate() || t.is_variable()) {
      const std::string& v = t.var();
      if (!t.is_constant() && bound.count(v) == 0) {
        return Status::InvalidArgument("unsafe rule (" + rule.ToString() +
                                       "): head variable " + v +
                                       " is not bound by a positive atom");
      }
    }
  }
  for (const Literal& lit : rule.body) {
    switch (lit.kind) {
      case Literal::Kind::kNegatedAtom:
        for (const Term& t : lit.atom.terms) {
          VADA_RETURN_IF_ERROR(require_bound(t, "negated atom"));
        }
        break;
      case Literal::Kind::kComparison:
        VADA_RETURN_IF_ERROR(require_bound(lit.lhs, "comparison"));
        VADA_RETURN_IF_ERROR(require_bound(lit.rhs, "comparison"));
        break;
      case Literal::Kind::kAssignment:
        VADA_RETURN_IF_ERROR(require_bound(lit.lhs, "assignment"));
        if (lit.arith_op != ArithOp::kNone) {
          VADA_RETURN_IF_ERROR(require_bound(lit.rhs, "assignment"));
        }
        break;
      case Literal::Kind::kAtom:
        break;
    }
  }

  // A fact must be ground.
  if (rule.IsFact()) {
    for (const Term& t : rule.head.terms) {
      if (!t.is_constant()) {
        return Status::InvalidArgument("fact " + rule.ToString() +
                                       " is not ground");
      }
    }
  }
  return Status::OK();
}

Status Program::Validate() const {
  for (const Rule& r : rules) {
    VADA_RETURN_IF_ERROR(ValidateRule(r));
  }
  return Status::OK();
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace vada::datalog
