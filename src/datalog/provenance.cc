#include "datalog/provenance.h"

namespace vada::datalog {

void Provenance::Record(const std::string& predicate, const Tuple& fact,
                        Derivation derivation) {
  derivations_.emplace(std::make_pair(predicate, fact),
                       std::move(derivation));
}

bool Provenance::Has(const std::string& predicate, const Tuple& fact) const {
  return derivations_.count({predicate, fact}) > 0;
}

const Derivation* Provenance::Find(const std::string& predicate,
                                   const Tuple& fact) const {
  auto it = derivations_.find({predicate, fact});
  return it == derivations_.end() ? nullptr : &it->second;
}

std::string Provenance::Explain(const std::string& predicate,
                                const Tuple& fact, size_t max_depth) const {
  std::string out;
  ExplainInto(predicate, fact, 0, max_depth, "", &out);
  return out;
}

void Provenance::ExplainInto(const std::string& predicate, const Tuple& fact,
                             size_t depth, size_t max_depth,
                             const std::string& indent,
                             std::string* out) const {
  *out += indent + predicate + fact.ToString();
  const Derivation* derivation = Find(predicate, fact);
  if (derivation == nullptr) {
    *out += "  (edb)\n";
    return;
  }
  if (depth >= max_depth) {
    *out += "  (...)\n";
    return;
  }
  *out += "\n" + indent + "  by: " + derivation->rule + "\n";
  for (const auto& [pred, premise] : derivation->premises) {
    ExplainInto(pred, premise, depth + 1, max_depth, indent + "  |- ", out);
  }
}

}  // namespace vada::datalog
