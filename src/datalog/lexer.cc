#include "datalog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace vada::datalog {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  size_t line_start = 0;  // byte offset of the current line's first char
  const size_t n = source.size();
  // Column (1-based) of the token whose first character sits at `i`.
  int token_col = 1;

  auto push = [&tokens, &line, &token_col](TokenKind kind,
                                           std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = token_col;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '%' or "//" to end of line.
    if (c == '%' || (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    token_col = static_cast<int>(i - line_start) + 1;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      std::string word(source.substr(start, i - start));
      if (word == "not") {
        push(TokenKind::kNot);
      } else if (std::isupper(static_cast<unsigned char>(word[0])) ||
                 word[0] == '_') {
        push(TokenKind::kVariable, std::move(word));
      } else {
        push(TokenKind::kIdent, std::move(word));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) &&
         (tokens.empty() || (tokens.back().kind != TokenKind::kInt &&
                             tokens.back().kind != TokenKind::kDouble &&
                             tokens.back().kind != TokenKind::kVariable &&
                             tokens.back().kind != TokenKind::kRParen)))) {
      // A '-' directly before digits is a negative literal unless the
      // previous token could end an arithmetic operand.
      size_t start = i;
      if (c == '-') ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.')) {
        if (source[i] == '.') {
          // ".." or ". " (end of clause) must not be swallowed.
          if (i + 1 >= n ||
              !std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
            break;
          }
          is_double = true;
        }
        ++i;
      }
      // Exponent part (e.g. 1e-3).
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (source[j] == '+' || source[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
            ++i;
          }
        }
      }
      std::string text(source.substr(start, i - start));
      Token t;
      t.line = line;
      t.col = token_col;
      t.text = text;
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      const int string_line = line;  // anchor the token at its opening quote
      ++i;
      std::string payload;
      bool closed = false;
      while (i < n) {
        char d = source[i];
        if (d == '\\' && i + 1 < n) {
          payload += source[i + 1];
          i += 2;
          continue;
        }
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\n') {
          ++line;
          line_start = i + 1;
        }
        payload += d;
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(payload);
      t.line = string_line;
      t.col = token_col;
      tokens.push_back(std::move(t));
      continue;
    }
    // Punctuation and operators.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && source[i + 1] == b;
    };
    if (two(':', '-')) {
      push(TokenKind::kImplies);
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokenKind::kNe);
      i += 2;
      continue;
    }
    if (two('<', '>')) {
      push(TokenKind::kNe);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenKind::kLe);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenKind::kGe);
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        break;
      case ')':
        push(TokenKind::kRParen);
        break;
      case ',':
        push(TokenKind::kComma);
        break;
      case '.':
        push(TokenKind::kDot);
        break;
      case '=':
        push(TokenKind::kEq);
        break;
      case '<':
        push(TokenKind::kLt);
        break;
      case '>':
        push(TokenKind::kGt);
        break;
      case '+':
        push(TokenKind::kPlus);
        break;
      case '-':
        push(TokenKind::kMinus);
        break;
      case '*':
        push(TokenKind::kStar);
        break;
      case '/':
        push(TokenKind::kSlash);
        break;
      case '!':
        push(TokenKind::kNot);
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
    ++i;
  }
  token_col = static_cast<int>(i - line_start) + 1;
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace vada::datalog
