#include "datalog/evaluator.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/span.h"

namespace vada::datalog {

std::optional<int> CompareValues(const Value& a, const Value& b) {
  std::optional<double> da = a.AsDouble();
  std::optional<double> db = b.AsDouble();
  if (da.has_value() && db.has_value()) {
    if (*da < *db) return -1;
    if (*da > *db) return 1;
    return 0;
  }
  if (a.type() != b.type()) return std::nullopt;
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

std::optional<Value> ApplyArith(ArithOp op, const Value& a, const Value& b) {
  std::optional<double> da = a.AsDouble();
  std::optional<double> db = b.AsDouble();
  if (!da.has_value() || !db.has_value()) return std::nullopt;
  bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(a.int_value() + b.int_value())
                      : Value::Double(*da + *db);
    case ArithOp::kSub:
      return both_int ? Value::Int(a.int_value() - b.int_value())
                      : Value::Double(*da - *db);
    case ArithOp::kMul:
      return both_int ? Value::Int(a.int_value() * b.int_value())
                      : Value::Double(*da * *db);
    case ArithOp::kDiv:
      if (*db == 0.0) return std::nullopt;
      return Value::Double(*da / *db);
    case ArithOp::kNone:
      return a;
  }
  return std::nullopt;
}

namespace {

bool EvalComparison(CompareOp op, const Value& a, const Value& b) {
  std::optional<int> cmp = CompareValues(a, b);
  switch (op) {
    case CompareOp::kEq:
      return cmp.has_value() && *cmp == 0;
    case CompareOp::kNe:
      return !cmp.has_value() || *cmp != 0;
    case CompareOp::kLt:
      return cmp.has_value() && *cmp < 0;
    case CompareOp::kLe:
      return cmp.has_value() && *cmp <= 0;
    case CompareOp::kGt:
      return cmp.has_value() && *cmp > 0;
    case CompareOp::kGe:
      return cmp.has_value() && *cmp >= 0;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule compilation: variables become dense slots; literals are put into a
// bind-aware execution order once, not per tuple.
// ---------------------------------------------------------------------------

struct CompiledTerm {
  bool is_var = false;
  int slot = -1;   // when is_var
  Value constant;  // when !is_var
};

struct CompiledAtom {
  std::string predicate;
  std::vector<CompiledTerm> terms;
};

struct CompiledLiteral {
  Literal::Kind kind = Literal::Kind::kAtom;
  CompiledAtom atom;
  CompareOp compare_op = CompareOp::kEq;
  CompiledTerm lhs;
  CompiledTerm rhs;
  int assign_slot = -1;
  ArithOp arith_op = ArithOp::kNone;
  bool recursive = false;  // atom over a same-stratum predicate
};

struct AggSpec {
  size_t head_position;
  AggFunc func;
  int slot;  // slot of the aggregated variable
};

struct CompiledRule {
  CompiledAtom head;
  std::vector<AggSpec> aggregates;  // empty for normal rules
  std::vector<CompiledLiteral> body;
  std::vector<size_t> recursive_positions;  // body indexes of recursive atoms
  int num_slots = 0;
  std::string text;  // for error messages
};

class RuleCompiler {
 public:
  explicit RuleCompiler(const std::set<std::string>& stratum_preds)
      : stratum_preds_(stratum_preds) {}

  CompiledRule Compile(const Rule& rule) {
    CompiledRule out;
    out.text = rule.ToString();

    // Execution order: start from the declared order but hoist builtins
    // and negations as early as their variables allow, and prefer atoms
    // that share variables with what is already bound (greedy).
    std::vector<const Literal*> pending;
    pending.reserve(rule.body.size());
    for (const Literal& l : rule.body) pending.push_back(&l);

    std::set<std::string> bound;
    std::vector<const Literal*> ordered;
    while (!pending.empty()) {
      // 1. Any ready builtin/negation?
      bool placed = false;
      for (size_t i = 0; i < pending.size(); ++i) {
        const Literal& l = *pending[i];
        if (IsReadyNonAtom(l, bound)) {
          ordered.push_back(&l);
          BindVars(l, &bound);
          pending.erase(pending.begin() + i);
          placed = true;
          break;
        }
      }
      if (placed) continue;
      // 2. Best positive atom: most bound terms; ties by declared order.
      int best = -1;
      int best_score = -1;
      for (size_t i = 0; i < pending.size(); ++i) {
        const Literal& l = *pending[i];
        if (l.kind != Literal::Kind::kAtom) continue;
        int score = 0;
        for (const Term& t : l.atom.terms) {
          if (t.is_constant() || (t.is_variable() && bound.count(t.var()))) {
            ++score;
          }
        }
        if (score > best_score) {
          best_score = score;
          best = static_cast<int>(i);
        }
      }
      if (best >= 0) {
        const Literal& l = *pending[best];
        ordered.push_back(&l);
        BindVars(l, &bound);
        pending.erase(pending.begin() + best);
        continue;
      }
      // 3. Only non-ready builtins/negations left. Program validation
      // guarantees this cannot happen for safe rules; emit in order as a
      // defensive fallback.
      ordered.push_back(pending.front());
      BindVars(*pending.front(), &bound);
      pending.erase(pending.begin());
    }

    for (const Literal* l : ordered) {
      out.body.push_back(CompileLiteral(*l));
      if (out.body.back().kind == Literal::Kind::kAtom &&
          out.body.back().recursive) {
        out.recursive_positions.push_back(out.body.size() - 1);
      }
    }

    // Head (aggregates recorded separately; their head slot stays -1 and
    // is filled from the aggregation result).
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      const Term& t = rule.head.terms[i];
      if (t.is_aggregate()) {
        out.aggregates.push_back(
            AggSpec{i, t.agg_func(), SlotOf(t.var())});
        CompiledTerm ct;
        ct.is_var = false;
        ct.constant = Value::Null();  // placeholder, overwritten per group
        out.head.terms.push_back(ct);
      } else {
        out.head.terms.push_back(CompileTerm(t));
      }
    }
    out.head.predicate = rule.head.predicate;
    out.num_slots = static_cast<int>(slots_.size());
    return out;
  }

 private:
  static bool IsReadyNonAtom(const Literal& l,
                             const std::set<std::string>& bound) {
    switch (l.kind) {
      case Literal::Kind::kAtom:
        return false;
      case Literal::Kind::kNegatedAtom:
        for (const Term& t : l.atom.terms) {
          if (t.is_variable() && bound.count(t.var()) == 0) return false;
        }
        return true;
      case Literal::Kind::kComparison:
        if (l.lhs.is_variable() && bound.count(l.lhs.var()) == 0) return false;
        if (l.rhs.is_variable() && bound.count(l.rhs.var()) == 0) return false;
        return true;
      case Literal::Kind::kAssignment:
        if (l.lhs.is_variable() && bound.count(l.lhs.var()) == 0) return false;
        if (l.arith_op != ArithOp::kNone && l.rhs.is_variable() &&
            bound.count(l.rhs.var()) == 0) {
          return false;
        }
        return true;
    }
    return false;
  }

  static void BindVars(const Literal& l, std::set<std::string>* bound) {
    switch (l.kind) {
      case Literal::Kind::kAtom:
        for (const Term& t : l.atom.terms) {
          if (t.is_variable()) bound->insert(t.var());
        }
        break;
      case Literal::Kind::kAssignment:
        bound->insert(l.assign_var);
        break;
      case Literal::Kind::kNegatedAtom:
      case Literal::Kind::kComparison:
        break;
    }
  }

  int SlotOf(const std::string& var) {
    auto it = slots_.find(var);
    if (it != slots_.end()) return it->second;
    int slot = static_cast<int>(slots_.size());
    slots_.emplace(var, slot);
    return slot;
  }

  CompiledTerm CompileTerm(const Term& t) {
    CompiledTerm ct;
    if (t.is_variable()) {
      ct.is_var = true;
      ct.slot = SlotOf(t.var());
    } else {
      ct.is_var = false;
      ct.constant = t.value();
    }
    return ct;
  }

  CompiledLiteral CompileLiteral(const Literal& l) {
    CompiledLiteral cl;
    cl.kind = l.kind;
    switch (l.kind) {
      case Literal::Kind::kAtom:
      case Literal::Kind::kNegatedAtom:
        cl.atom.predicate = l.atom.predicate;
        for (const Term& t : l.atom.terms) {
          cl.atom.terms.push_back(CompileTerm(t));
        }
        cl.recursive = stratum_preds_.count(l.atom.predicate) > 0 &&
                       l.kind == Literal::Kind::kAtom;
        break;
      case Literal::Kind::kComparison:
        cl.compare_op = l.compare_op;
        cl.lhs = CompileTerm(l.lhs);
        cl.rhs = CompileTerm(l.rhs);
        break;
      case Literal::Kind::kAssignment:
        cl.assign_slot = SlotOf(l.assign_var);
        cl.arith_op = l.arith_op;
        cl.lhs = CompileTerm(l.lhs);
        cl.rhs = CompileTerm(l.rhs);
        break;
    }
    return cl;
  }

  const std::set<std::string>& stratum_preds_;
  std::map<std::string, int> slots_;
};

// ---------------------------------------------------------------------------
// Rule execution.
// ---------------------------------------------------------------------------

/// Mutable binding environment with a trail for backtracking.
class BindingEnv {
 public:
  explicit BindingEnv(int num_slots)
      : values_(num_slots), bound_(num_slots, false) {}

  bool is_bound(int slot) const { return bound_[slot]; }
  const Value& value(int slot) const { return values_[slot]; }

  void Bind(int slot, Value v) {
    values_[slot] = std::move(v);
    bound_[slot] = true;
    trail_.push_back(slot);
  }

  size_t Mark() const { return trail_.size(); }

  void UnwindTo(size_t mark) {
    while (trail_.size() > mark) {
      bound_[trail_.back()] = false;
      trail_.pop_back();
    }
  }

 private:
  std::vector<Value> values_;
  std::vector<bool> bound_;
  std::vector<int> trail_;
};

/// Evaluates one compiled rule body, invoking `on_solution` for every
/// complete binding. `delta_position` (or npos) designates the body atom
/// that must range over `delta` instead of `db` (semi-naive).
class RuleExecutor {
 public:
  RuleExecutor(const CompiledRule& rule, const Database& db,
               const Database* delta, size_t delta_position)
      : rule_(rule),
        db_(db),
        delta_(delta),
        delta_position_(delta_position),
        env_(rule.num_slots) {}

  template <typename Fn>
  void ForEachSolution(Fn&& on_solution) {
    Descend(0, on_solution);
  }

  /// Restricts the outermost body literal (which must be a positive atom)
  /// to the candidate subrange [begin, end). Concatenating the solutions
  /// of consecutive ranges reproduces the full run's solutions in the
  /// same order — the invariant parallel range-chunking relies on.
  void RestrictOuterRange(size_t begin, size_t end) {
    outer_begin_ = begin;
    outer_end_ = end;
  }

  BindingEnv& env() { return env_; }

  /// Candidate facts scanned by body-atom evaluation (the join-probe
  /// count optimisation work cares about).
  size_t probes() const { return probes_; }

  /// Ground instances of the rule's positive body atoms under the current
  /// (complete) bindings — the premises of the derivation just emitted.
  std::vector<std::pair<std::string, Tuple>> GroundPositiveAtoms() const {
    std::vector<std::pair<std::string, Tuple>> out;
    for (const CompiledLiteral& lit : rule_.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      std::vector<Value> values;
      values.reserve(lit.atom.terms.size());
      bool ok = true;
      for (const CompiledTerm& t : lit.atom.terms) {
        std::optional<Value> v = TermValue(t);
        if (!v.has_value()) {
          ok = false;
          break;
        }
        values.push_back(std::move(*v));
      }
      if (ok) out.push_back({lit.atom.predicate, Tuple(std::move(values))});
    }
    return out;
  }

 private:
  std::optional<Value> TermValue(const CompiledTerm& t) const {
    if (!t.is_var) return t.constant;
    if (!env_.is_bound(t.slot)) return std::nullopt;
    return env_.value(t.slot);
  }

  template <typename Fn>
  void Descend(size_t index, Fn&& on_solution) {
    if (index == rule_.body.size()) {
      on_solution(env_);
      return;
    }
    const CompiledLiteral& lit = rule_.body[index];
    switch (lit.kind) {
      case Literal::Kind::kAtom: {
        const Database& source =
            (index == delta_position_ && delta_ != nullptr) ? *delta_ : db_;
        EvalAtom(lit, source, index, on_solution);
        return;
      }
      case Literal::Kind::kNegatedAtom: {
        std::vector<Value> ground;
        ground.reserve(lit.atom.terms.size());
        for (const CompiledTerm& t : lit.atom.terms) {
          std::optional<Value> v = TermValue(t);
          if (!v.has_value()) return;  // unsafe (validated away); fail closed
          ground.push_back(std::move(*v));
        }
        if (!db_.Contains(lit.atom.predicate, Tuple(std::move(ground)))) {
          Descend(index + 1, on_solution);
        }
        return;
      }
      case Literal::Kind::kComparison: {
        std::optional<Value> a = TermValue(lit.lhs);
        std::optional<Value> b = TermValue(lit.rhs);
        if (!a.has_value() || !b.has_value()) return;
        if (EvalComparison(lit.compare_op, *a, *b)) {
          Descend(index + 1, on_solution);
        }
        return;
      }
      case Literal::Kind::kAssignment: {
        std::optional<Value> a = TermValue(lit.lhs);
        if (!a.has_value()) return;
        std::optional<Value> result;
        if (lit.arith_op == ArithOp::kNone) {
          result = *a;
        } else {
          std::optional<Value> b = TermValue(lit.rhs);
          if (!b.has_value()) return;
          result = ApplyArith(lit.arith_op, *a, *b);
        }
        if (!result.has_value()) return;  // arithmetic failure: literal false
        if (env_.is_bound(lit.assign_slot)) {
          std::optional<int> cmp = CompareValues(env_.value(lit.assign_slot),
                                                 *result);
          if (cmp.has_value() && *cmp == 0) Descend(index + 1, on_solution);
          return;
        }
        size_t mark = env_.Mark();
        env_.Bind(lit.assign_slot, std::move(*result));
        Descend(index + 1, on_solution);
        env_.UnwindTo(mark);
        return;
      }
    }
  }

  template <typename Fn>
  void EvalAtom(const CompiledLiteral& lit, const Database& source,
                size_t index, Fn&& on_solution) {
    // Choose a seek column: first term that is ground under the current
    // bindings.
    int seek_pos = -1;
    Value seek_value;
    for (size_t i = 0; i < lit.atom.terms.size(); ++i) {
      std::optional<Value> v = TermValue(lit.atom.terms[i]);
      if (v.has_value()) {
        seek_pos = static_cast<int>(i);
        seek_value = std::move(*v);
        break;
      }
    }
    const std::vector<Tuple>& all = source.facts(lit.atom.predicate);
    const std::vector<size_t>* candidates = nullptr;
    if (seek_pos >= 0) {
      candidates = source.Lookup(lit.atom.predicate,
                                 static_cast<size_t>(seek_pos), seek_value);
      if (candidates == nullptr) return;  // no fact matches the bound column
    }
    size_t count = (candidates != nullptr) ? candidates->size() : all.size();
    size_t begin = 0;
    size_t end = count;
    if (index == 0) {
      begin = std::min(outer_begin_, count);
      end = std::min(outer_end_, count);
      if (begin > end) begin = end;
    }
    probes_ += end - begin;
    for (size_t ci = begin; ci < end; ++ci) {
      const Tuple& fact =
          (candidates != nullptr) ? all[(*candidates)[ci]] : all[ci];
      if (fact.size() != lit.atom.terms.size()) continue;
      size_t mark = env_.Mark();
      bool ok = true;
      for (size_t i = 0; i < lit.atom.terms.size() && ok; ++i) {
        const CompiledTerm& t = lit.atom.terms[i];
        if (!t.is_var) {
          ok = (t.constant == fact.at(i));
        } else if (env_.is_bound(t.slot)) {
          ok = (env_.value(t.slot) == fact.at(i));
        } else {
          env_.Bind(t.slot, fact.at(i));
        }
      }
      if (ok) Descend(index + 1, on_solution);
      env_.UnwindTo(mark);
    }
  }

  const CompiledRule& rule_;
  const Database& db_;
  const Database* delta_;
  size_t delta_position_;
  size_t outer_begin_ = 0;
  size_t outer_end_ = static_cast<size_t>(-1);
  BindingEnv env_;
  size_t probes_ = 0;
};

constexpr size_t kNoDelta = static_cast<size_t>(-1);
constexpr size_t kFullRange = static_cast<size_t>(-1);

/// Builds the head tuple of a non-aggregate rule from a solution.
Tuple BuildHead(const CompiledRule& rule, const BindingEnv& env) {
  std::vector<Value> values;
  values.reserve(rule.head.terms.size());
  for (const CompiledTerm& t : rule.head.terms) {
    values.push_back(t.is_var ? env.value(t.slot) : t.constant);
  }
  return Tuple(std::move(values));
}

/// Evaluates a non-aggregate rule and collects candidate head tuples.
/// When `premises_out` is non-null it receives, parallel to `out`, the
/// ground positive body atoms of each solution (for provenance).
/// `[outer_begin, outer_end)` restricts the outermost literal's candidate
/// range (parallel chunking); pass 0/kFullRange for a full evaluation.
void EvaluateRule(
    const CompiledRule& rule, const Database& db, const Database* delta,
    size_t delta_position, size_t outer_begin, size_t outer_end,
    std::vector<Tuple>* out,
    std::vector<std::vector<std::pair<std::string, Tuple>>>* premises_out =
        nullptr,
    size_t* probes = nullptr) {
  RuleExecutor exec(rule, db, delta, delta_position);
  exec.RestrictOuterRange(outer_begin, outer_end);
  exec.ForEachSolution([&](const BindingEnv& env) {
    out->push_back(BuildHead(rule, env));
    if (premises_out != nullptr) {
      premises_out->push_back(exec.GroundPositiveAtoms());
    }
  });
  if (probes != nullptr) *probes += exec.probes();
}

/// Number of candidates the outermost body literal ranges over — the
/// iteration space parallel chunking splits. 0 when the rule cannot be
/// chunked (empty body, or a builtin/negation was ordered first).
size_t OuterCandidateCount(const CompiledRule& rule, const Database& db,
                           const Database* delta, size_t delta_position) {
  if (rule.body.empty() || rule.body[0].kind != Literal::Kind::kAtom) return 0;
  const CompiledAtom& atom = rule.body[0].atom;
  const Database& source =
      (delta_position == 0 && delta != nullptr) ? *delta : db;
  // Mirror RuleExecutor::EvalAtom's seek choice: with no bindings yet,
  // the seek column is the first constant term, if any.
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (!atom.terms[i].is_var) {
      const std::vector<size_t>* candidates =
          source.Lookup(atom.predicate, i, atom.terms[i].constant);
      return candidates == nullptr ? 0 : candidates->size();
    }
  }
  return source.facts(atom.predicate).size();
}

/// Evaluates an aggregate rule: groups body solutions by the non-aggregate
/// head terms; each aggregate ranges over the *distinct values* its
/// variable takes within the group (set semantics).
void EvaluateAggregateRule(const CompiledRule& rule, const Database& db,
                           std::vector<Tuple>* out,
                           size_t* probes = nullptr) {
  struct GroupState {
    std::vector<std::set<Value>> distinct;  // one per aggregate
  };
  std::map<Tuple, GroupState> groups;

  RuleExecutor exec(rule, db, nullptr, kNoDelta);
  exec.ForEachSolution([&](const BindingEnv& env) {
    std::vector<Value> key;
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      bool is_agg = false;
      for (const AggSpec& spec : rule.aggregates) {
        if (spec.head_position == i) {
          is_agg = true;
          break;
        }
      }
      if (is_agg) continue;
      const CompiledTerm& t = rule.head.terms[i];
      key.push_back(t.is_var ? env.value(t.slot) : t.constant);
    }
    GroupState& state = groups[Tuple(std::move(key))];
    if (state.distinct.empty()) state.distinct.resize(rule.aggregates.size());
    for (size_t a = 0; a < rule.aggregates.size(); ++a) {
      state.distinct[a].insert(env.value(rule.aggregates[a].slot));
    }
  });

  if (probes != nullptr) *probes += exec.probes();

  for (const auto& [key, state] : groups) {
    std::vector<Value> values(rule.head.terms.size());
    size_t key_index = 0;
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      bool is_agg = false;
      for (size_t a = 0; a < rule.aggregates.size(); ++a) {
        if (rule.aggregates[a].head_position == i) {
          const std::set<Value>& vals = state.distinct[a];
          switch (rule.aggregates[a].func) {
            case AggFunc::kCount:
              values[i] = Value::Int(static_cast<int64_t>(vals.size()));
              break;
            case AggFunc::kMin:
              values[i] = vals.empty() ? Value::Null() : *vals.begin();
              break;
            case AggFunc::kMax:
              values[i] = vals.empty() ? Value::Null() : *vals.rbegin();
              break;
            case AggFunc::kSum:
            case AggFunc::kAvg: {
              double sum = 0.0;
              bool all_int = true;
              size_t n = 0;
              for (const Value& v : vals) {
                std::optional<double> d = v.AsDouble();
                if (!d.has_value()) continue;
                if (v.type() != ValueType::kInt) all_int = false;
                sum += *d;
                ++n;
              }
              if (rule.aggregates[a].func == AggFunc::kAvg) {
                values[i] = (n == 0) ? Value::Null() : Value::Double(sum / n);
              } else {
                values[i] = all_int ? Value::Int(static_cast<int64_t>(sum))
                                    : Value::Double(sum);
              }
              break;
            }
          }
          is_agg = true;
          break;
        }
      }
      if (!is_agg) {
        values[i] = key.at(key_index++);
      }
    }
    out->push_back(Tuple(std::move(values)));
  }
}

}  // namespace

Evaluator::Evaluator(Program program, EvalOptions options)
    : program_(std::move(program)), options_(options) {}

Status Evaluator::Prepare() {
  VADA_RETURN_IF_ERROR(program_.Validate());
  Result<Stratification> strat = Stratify(program_);
  if (!strat.ok()) return strat.status();
  stratification_ = std::move(strat).value();
  prepared_ = true;
  return Status::OK();
}

Status Evaluator::Run(Database* db, EvalStats* stats,
                      Provenance* provenance) {
  if (!prepared_) {
    return Status::FailedPrecondition("Evaluator::Prepare() was not called");
  }
  EvalStats local_stats;
  EvalStats* st = (stats != nullptr) ? stats : &local_stats;
  obs::Histogram* stratum_hist =
      options_.metrics == nullptr
          ? nullptr
          : options_.metrics->GetHistogram(
                "vada_datalog_stratum_seconds",
                "Wall time per stratum fixpoint",
                obs::Histogram::DefaultLatencyBucketsSeconds());

  for (const std::vector<std::string>& stratum : stratification_.strata) {
    obs::ScopedSpan stratum_span(nullptr, stratum_hist, "stratum");
    std::set<std::string> stratum_preds(stratum.begin(), stratum.end());

    // Compile this stratum's rules.
    std::vector<CompiledRule> normal_rules;
    std::vector<CompiledRule> aggregate_rules;
    for (const Rule& r : program_.rules) {
      if (stratum_preds.count(r.head.predicate) == 0) continue;
      RuleCompiler compiler(stratum_preds);
      CompiledRule cr = compiler.Compile(r);
      if (cr.aggregates.empty()) {
        normal_rules.push_back(std::move(cr));
      } else {
        aggregate_rules.push_back(std::move(cr));
      }
    }

    // Aggregate rules first: stratification guarantees their bodies are
    // complete (all body predicates lie in strictly lower strata).
    for (const CompiledRule& rule : aggregate_rules) {
      ++st->rule_applications;
      std::vector<Tuple> produced;
      EvaluateAggregateRule(rule, *db, &produced, &st->join_probes);
      for (Tuple& t : produced) {
        if (provenance != nullptr && !db->Contains(rule.head.predicate, t)) {
          // Aggregates summarise whole groups; record the rule alone.
          provenance->Record(rule.head.predicate, t, Derivation{rule.text, {}});
        }
        if (db->Insert(rule.head.predicate, std::move(t))) {
          ++st->facts_derived;
        }
      }
    }

    if (normal_rules.empty()) continue;

    if (!options_.semi_naive) {
      // Naive fixpoint: re-evaluate everything until no new facts.
      for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
        ++st->iterations;
        bool any_new = false;
        for (const CompiledRule& rule : normal_rules) {
          ++st->rule_applications;
          std::vector<Tuple> produced;
          std::vector<std::vector<std::pair<std::string, Tuple>>> premises;
          EvaluateRule(rule, *db, nullptr, kNoDelta, 0, kFullRange, &produced,
                       provenance != nullptr ? &premises : nullptr,
                       &st->join_probes);
          for (size_t i = 0; i < produced.size(); ++i) {
            Tuple& t = produced[i];
            if (provenance != nullptr &&
                !db->Contains(rule.head.predicate, t)) {
              provenance->Record(rule.head.predicate, t,
                                 Derivation{rule.text, premises[i]});
            }
            if (db->Insert(rule.head.predicate, std::move(t))) {
              ++st->facts_derived;
              any_new = true;
            }
          }
        }
        if (!any_new) break;
        if (iter + 1 == options_.max_iterations) {
          return Status::Internal("naive evaluation exceeded max_iterations");
        }
      }
      continue;
    }

    // Semi-naive with batch rounds: round 0 evaluates every rule in
    // full; later rounds evaluate only recursive rules, once per
    // recursive occurrence with that occurrence restricted to the
    // previous round's delta. Every task of a round reads the same
    // immutable round-start state and results are merged in fixed task
    // order, so the rules of a round are embarrassingly parallel and a
    // pool run is bit-identical to an inline run — same facts, same
    // per-predicate order, same EvalStats (DESIGN.md §5e). Large tasks
    // are further split into outer-candidate ranges; concatenating
    // range results reproduces the unchunked enumeration order exactly.
    struct RuleTask {
      const CompiledRule* rule = nullptr;
      size_t delta_position = kNoDelta;
      size_t outer_begin = 0;
      size_t outer_end = kFullRange;
      std::vector<Tuple> produced;
      std::vector<std::vector<std::pair<std::string, Tuple>>> premises;
      size_t probes = 0;
    };
    ThreadPool* pool =
        (options_.pool != nullptr && options_.pool->workers() > 0)
            ? options_.pool
            : nullptr;

    auto plan_rule = [&](const CompiledRule& rule, size_t delta_position,
                         const Database* delta,
                         std::vector<RuleTask>* tasks) {
      ++st->rule_applications;
      RuleTask task;
      task.rule = &rule;
      task.delta_position = delta_position;
      size_t chunks = 1;
      size_t count = 0;
      if (pool != nullptr) {
        count = OuterCandidateCount(rule, *db, delta, delta_position);
        if (count >= options_.parallel_chunk_threshold) {
          chunks = std::min(pool->workers() + 1, count);
        }
      }
      if (chunks <= 1) {
        tasks->push_back(std::move(task));
        return;
      }
      size_t base = count / chunks;
      size_t rem = count % chunks;
      size_t begin = 0;
      for (size_t c = 0; c < chunks; ++c) {
        size_t len = base + (c < rem ? 1 : 0);
        RuleTask chunk = task;
        chunk.outer_begin = begin;
        chunk.outer_end = begin + len;
        begin += len;
        tasks->push_back(std::move(chunk));
      }
    };

    auto run_tasks = [&](std::vector<RuleTask>* tasks, const Database* delta) {
      auto eval_one = [&](size_t i) {
        RuleTask& task = (*tasks)[i];
        EvaluateRule(*task.rule, *db, delta, task.delta_position,
                     task.outer_begin, task.outer_end, &task.produced,
                     provenance != nullptr ? &task.premises : nullptr,
                     &task.probes);
      };
      if (pool != nullptr && tasks->size() > 1) {
        pool->ParallelFor(tasks->size(), eval_one);
      } else {
        for (size_t i = 0; i < tasks->size(); ++i) eval_one(i);
      }
    };

    auto merge_tasks = [&](std::vector<RuleTask>* tasks,
                           Database* delta_out) {
      for (RuleTask& task : *tasks) {
        st->join_probes += task.probes;
        const CompiledRule& rule = *task.rule;
        for (size_t i = 0; i < task.produced.size(); ++i) {
          Tuple& t = task.produced[i];
          if (provenance != nullptr &&
              !db->Contains(rule.head.predicate, t)) {
            provenance->Record(rule.head.predicate, t,
                               Derivation{rule.text, task.premises[i]});
          }
          if (db->Insert(rule.head.predicate, t)) {
            ++st->facts_derived;
            delta_out->Insert(rule.head.predicate, std::move(t));
          }
        }
      }
    };

    Database delta;
    ++st->iterations;
    {
      std::vector<RuleTask> tasks;
      for (const CompiledRule& rule : normal_rules) {
        plan_rule(rule, kNoDelta, nullptr, &tasks);
      }
      run_tasks(&tasks, nullptr);
      merge_tasks(&tasks, &delta);
    }

    for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
      if (delta.TotalFacts() == 0) break;
      ++st->iterations;
      Database next_delta;
      std::vector<RuleTask> tasks;
      for (const CompiledRule& rule : normal_rules) {
        for (size_t pos : rule.recursive_positions) {
          if (delta.FactCount(rule.body[pos].atom.predicate) == 0) continue;
          plan_rule(rule, pos, &delta, &tasks);
        }
      }
      run_tasks(&tasks, &delta);
      merge_tasks(&tasks, &next_delta);
      delta = std::move(next_delta);
      if (iter + 1 == options_.max_iterations && delta.TotalFacts() != 0) {
        return Status::Internal("semi-naive evaluation exceeded max_iterations");
      }
    }
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m->GetCounter("vada_datalog_rules_fired",
                  "Rule body evaluations attempted")
        ->Increment(st->rule_applications);
    m->GetCounter("vada_datalog_facts_derived", "New IDB facts derived")
        ->Increment(st->facts_derived);
    m->GetCounter("vada_datalog_iterations",
                  "Fixpoint rounds across all strata")
        ->Increment(st->iterations);
    m->GetCounter("vada_datalog_join_probes",
                  "Candidate facts scanned while joining body atoms")
        ->Increment(st->join_probes);
    m->GetCounter("vada_datalog_evaluations", "Evaluator::Run invocations")
        ->Increment();
  }
  return Status::OK();
}

Result<std::vector<Tuple>> Query(const Program& program, Database* db,
                                 const std::string& goal_predicate,
                                 const EvalOptions& options) {
  Evaluator eval(program, options);
  VADA_RETURN_IF_ERROR(eval.Prepare());
  VADA_RETURN_IF_ERROR(eval.Run(db));
  std::vector<Tuple> out = db->facts(goal_predicate);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vada::datalog
