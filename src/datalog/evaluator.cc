#include "datalog/evaluator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "datalog/analysis/dataflow/optimizer.h"
#include "datalog/explain.h"
#include "datalog/symbol_table.h"
#include "obs/span.h"

namespace vada::datalog {

std::optional<int> CompareValues(const Value& a, const Value& b) {
  std::optional<double> da = a.AsDouble();
  std::optional<double> db = b.AsDouble();
  if (da.has_value() && db.has_value()) {
    if (*da < *db) return -1;
    if (*da > *db) return 1;
    return 0;
  }
  if (a.type() != b.type()) return std::nullopt;
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

std::optional<Value> ApplyArith(ArithOp op, const Value& a, const Value& b) {
  std::optional<double> da = a.AsDouble();
  std::optional<double> db = b.AsDouble();
  if (!da.has_value() || !db.has_value()) return std::nullopt;
  bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(a.int_value() + b.int_value())
                      : Value::Double(*da + *db);
    case ArithOp::kSub:
      return both_int ? Value::Int(a.int_value() - b.int_value())
                      : Value::Double(*da - *db);
    case ArithOp::kMul:
      return both_int ? Value::Int(a.int_value() * b.int_value())
                      : Value::Double(*da * *db);
    case ArithOp::kDiv:
      if (*db == 0.0) return std::nullopt;
      return Value::Double(*da / *db);
    case ArithOp::kNone:
      return a;
  }
  return std::nullopt;
}

bool EvalCompare(CompareOp op, const Value& a, const Value& b) {
  std::optional<int> cmp = CompareValues(a, b);
  switch (op) {
    case CompareOp::kEq:
      return cmp.has_value() && *cmp == 0;
    case CompareOp::kNe:
      return !cmp.has_value() || *cmp != 0;
    case CompareOp::kLt:
      return cmp.has_value() && *cmp < 0;
    case CompareOp::kLe:
      return cmp.has_value() && *cmp <= 0;
    case CompareOp::kGt:
      return cmp.has_value() && *cmp > 0;
    case CompareOp::kGe:
      return cmp.has_value() && *cmp >= 0;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Rule compilation: variables become dense slots; literals are put into a
// bind-aware execution order once, not per tuple. Constants are interned
// once here, so the execution hot path never hashes a Value — join
// equality is uint32 symbol-id equality throughout (DESIGN.md §5j).
// Value-semantics operations (comparisons, arithmetic, aggregation) are
// the one place ids are materialized back into Values, because they need
// numeric coercion that id identity cannot express.
// ---------------------------------------------------------------------------

struct CompiledTerm {
  bool is_var = false;
  int slot = -1;            // when is_var
  Value constant;           // when !is_var
  SymbolId const_id = kNoSymbol;  // interned `constant` (when !is_var)
};

struct CompiledAtom {
  std::string predicate;
  std::vector<CompiledTerm> terms;
};

/// The per-row match plan of one positive atom, fixed at compile time.
/// Because execution follows the compiled order (atoms bind every
/// variable they mention, assignments always bind theirs), the static
/// bound/unbound split below equals the runtime binding state at literal
/// entry, so the inner candidate loop is branch-free over these lists:
/// pure id comparisons, then slot writes.
struct AtomMatchPlan {
  struct PosId {
    uint32_t pos;
    SymbolId id;
  };
  struct PosSlot {
    uint32_t pos;
    int slot;
  };
  struct PosPos {
    uint32_t pos;    // this column...
    uint32_t other;  // ...must equal this earlier column (repeated var)
  };
  std::vector<PosId> const_checks;    // column == interned constant
  std::vector<PosSlot> bound_checks;  // column == already-bound slot id
  std::vector<PosPos> self_checks;    // within-atom repeated variable
  std::vector<PosSlot> binds;         // first occurrence: bind slot
};

struct CompiledLiteral {
  Literal::Kind kind = Literal::Kind::kAtom;
  CompiledAtom atom;
  CompareOp compare_op = CompareOp::kEq;
  CompiledTerm lhs;
  CompiledTerm rhs;
  int assign_slot = -1;
  ArithOp arith_op = ArithOp::kNone;
  bool recursive = false;  // atom over a same-stratum predicate
  /// For positive atoms: the column positions that are ground when this
  /// literal starts executing — constants, plus variables bound by
  /// earlier literals of the execution order. Statically known because
  /// the order is fixed at compile time; this is the key set the
  /// composite index probe uses. Sorted ascending.
  std::vector<size_t> bound_positions;
  /// For positive atoms: the vectorized probe-loop plan (see above).
  AtomMatchPlan match;
  /// Position of this literal in the rule's *declared* body (the
  /// compiled body is in execution order) — EXPLAIN reports both.
  size_t body_index = 0;
  /// The planner's candidate estimate when it placed this literal
  /// (atoms under cost-based reordering; 0 otherwise).
  size_t estimated_cost = 0;
  /// Static cardinality prior that backed the estimate when the
  /// relation had no facts at compile time (0: runtime stats decided).
  size_t static_prior = 0;
};

struct AggSpec {
  size_t head_position;
  AggFunc func;
  int slot;  // slot of the aggregated variable
};

struct CompiledRule {
  CompiledAtom head;
  std::vector<AggSpec> aggregates;  // empty for normal rules
  std::vector<CompiledLiteral> body;
  std::vector<size_t> recursive_positions;  // body indexes of recursive atoms
  int num_slots = 0;
  std::string text;        // for error messages
  const Rule* source = nullptr;  // declared rule, for EXPLAIN rendering
};

class RuleCompiler {
 public:
  /// `db` supplies the cardinality estimates of cost-based reordering
  /// (may be null: falls back to the legacy bound-count heuristic).
  RuleCompiler(const std::set<std::string>& stratum_preds, const Database* db,
               const PlannerOptions& planner)
      : stratum_preds_(stratum_preds), db_(db), planner_(planner) {}

  CompiledRule Compile(const Rule& rule) {
    CompiledRule out;
    out.text = rule.ToString();
    out.source = &rule;

    // Execution order: the planner hoists builtins and negations as
    // early as their variables allow and orders positive atoms by
    // estimated selectivity (or, without `reorder`, by bound-term
    // count — the legacy heuristic).
    std::vector<LiteralPlan> plan;
    std::vector<size_t> order = PlanBodyOrder(rule, db_, planner_, &plan);

    // Compile in execution order, tracking which slots are bound when
    // each literal starts — that static set is exactly the runtime
    // binding state at literal entry, so it names the index key columns
    // and splits the match plan into checks vs. binds.
    std::set<int> bound_slots;
    for (size_t oi = 0; oi < order.size(); ++oi) {
      size_t body_index = order[oi];
      const Literal& l = rule.body[body_index];
      CompiledLiteral cl = CompileLiteral(l);
      cl.body_index = body_index;
      cl.estimated_cost = plan[oi].estimated_cost;
      cl.static_prior = plan[oi].static_prior;
      if (cl.kind == Literal::Kind::kAtom) {
        std::map<int, uint32_t> first_pos;  // slot -> binding column
        for (size_t i = 0; i < cl.atom.terms.size(); ++i) {
          const CompiledTerm& t = cl.atom.terms[i];
          uint32_t pos = static_cast<uint32_t>(i);
          if (!t.is_var) {
            cl.bound_positions.push_back(i);
            cl.match.const_checks.push_back({pos, t.const_id});
          } else if (bound_slots.count(t.slot) > 0) {
            cl.bound_positions.push_back(i);
            cl.match.bound_checks.push_back({pos, t.slot});
          } else if (auto fit = first_pos.find(t.slot);
                     fit != first_pos.end()) {
            cl.match.self_checks.push_back({pos, fit->second});
          } else {
            first_pos.emplace(t.slot, pos);
            cl.match.binds.push_back({pos, t.slot});
          }
        }
      }
      switch (cl.kind) {
        case Literal::Kind::kAtom:
          for (const CompiledTerm& t : cl.atom.terms) {
            if (t.is_var) bound_slots.insert(t.slot);
          }
          break;
        case Literal::Kind::kAssignment:
          bound_slots.insert(cl.assign_slot);
          break;
        case Literal::Kind::kNegatedAtom:
        case Literal::Kind::kComparison:
          break;
      }
      out.body.push_back(std::move(cl));
      if (out.body.back().kind == Literal::Kind::kAtom &&
          out.body.back().recursive) {
        out.recursive_positions.push_back(out.body.size() - 1);
      }
    }

    // Head (aggregates recorded separately; their head slot stays -1 and
    // is filled from the aggregation result).
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      const Term& t = rule.head.terms[i];
      if (t.is_aggregate()) {
        out.aggregates.push_back(
            AggSpec{i, t.agg_func(), SlotOf(t.var())});
        CompiledTerm ct;
        ct.is_var = false;
        ct.constant = Value::Null();  // placeholder, overwritten per group
        ct.const_id = SymbolTable::Global().Intern(ct.constant);
        out.head.terms.push_back(ct);
      } else {
        out.head.terms.push_back(CompileTerm(t));
      }
    }
    out.head.predicate = rule.head.predicate;
    out.num_slots = static_cast<int>(slots_.size());
    return out;
  }

 private:
  int SlotOf(const std::string& var) {
    auto it = slots_.find(var);
    if (it != slots_.end()) return it->second;
    int slot = static_cast<int>(slots_.size());
    slots_.emplace(var, slot);
    return slot;
  }

  CompiledTerm CompileTerm(const Term& t) {
    CompiledTerm ct;
    if (t.is_variable()) {
      ct.is_var = true;
      ct.slot = SlotOf(t.var());
    } else {
      ct.is_var = false;
      ct.constant = t.value();
      // Interning here (not per probe) is what keeps constants off the
      // hot path; the id is canonical, so if the constant matches any
      // stored fact they share this id.
      ct.const_id = SymbolTable::Global().Intern(ct.constant);
    }
    return ct;
  }

  CompiledLiteral CompileLiteral(const Literal& l) {
    CompiledLiteral cl;
    cl.kind = l.kind;
    switch (l.kind) {
      case Literal::Kind::kAtom:
      case Literal::Kind::kNegatedAtom:
        cl.atom.predicate = l.atom.predicate;
        for (const Term& t : l.atom.terms) {
          cl.atom.terms.push_back(CompileTerm(t));
        }
        cl.recursive = stratum_preds_.count(l.atom.predicate) > 0 &&
                       l.kind == Literal::Kind::kAtom;
        break;
      case Literal::Kind::kComparison:
        cl.compare_op = l.compare_op;
        cl.lhs = CompileTerm(l.lhs);
        cl.rhs = CompileTerm(l.rhs);
        break;
      case Literal::Kind::kAssignment:
        cl.assign_slot = SlotOf(l.assign_var);
        cl.arith_op = l.arith_op;
        cl.lhs = CompileTerm(l.lhs);
        cl.rhs = CompileTerm(l.rhs);
        break;
    }
    return cl;
  }

  const std::set<std::string>& stratum_preds_;
  const Database* db_;
  PlannerOptions planner_;
  std::map<std::string, int> slots_;
};

// ---------------------------------------------------------------------------
// Rule execution.
// ---------------------------------------------------------------------------

/// Mutable binding environment with a trail for backtracking. Slots hold
/// symbol ids, never Values — materialization happens only in the
/// Value-semantics literals (comparisons, arithmetic) and at the
/// provenance/aggregation boundary.
class BindingEnv {
 public:
  explicit BindingEnv(int num_slots)
      : ids_(num_slots, kNoSymbol), bound_(num_slots, 0) {}

  bool is_bound(int slot) const { return bound_[slot] != 0; }
  SymbolId id(int slot) const { return ids_[slot]; }

  void Bind(int slot, SymbolId id) {
    ids_[slot] = id;
    bound_[slot] = 1;
    trail_.push_back(slot);
  }

  size_t Mark() const { return trail_.size(); }

  void UnwindTo(size_t mark) {
    while (trail_.size() > mark) {
      bound_[trail_.back()] = 0;
      trail_.pop_back();
    }
  }

 private:
  std::vector<SymbolId> ids_;
  std::vector<unsigned char> bound_;
  std::vector<int> trail_;
};

/// Join-work counters of one rule evaluation; fields map 1:1 onto the
/// EvalStats join counters (scan_probes -> join_probes).
struct JoinWork {
  size_t scan_probes = 0;
  size_t index_probes = 0;
  size_t index_candidates = 0;
  size_t index_builds = 0;

  void Add(const JoinWork& o) {
    scan_probes += o.scan_probes;
    index_probes += o.index_probes;
    index_candidates += o.index_candidates;
    index_builds += o.index_builds;
  }

  void MergeInto(EvalStats* st) const {
    st->join_probes += scan_probes;
    st->index_probes += index_probes;
    st->index_candidates += index_candidates;
    st->index_builds += index_builds;
  }
};

/// Evaluates one compiled rule body, invoking `on_solution` for every
/// complete binding. `delta_position` (or npos) designates the body atom
/// that must range over `delta` instead of `db` (semi-naive).
class RuleExecutor {
 public:
  RuleExecutor(const CompiledRule& rule, const Database& db,
               const Database* delta, size_t delta_position,
               const PlannerOptions& planner)
      : rule_(rule),
        db_(db),
        delta_(delta),
        delta_position_(delta_position),
        planner_(planner),
        table_(SymbolTable::Global()),
        lit_index_(rule.body.size()),
        env_(rule.num_slots) {}

  template <typename Fn>
  void ForEachSolution(Fn&& on_solution) {
    Descend(0, on_solution);
  }

  /// Restricts the outermost body literal (which must be a positive atom)
  /// to the candidate subrange [begin, end). Concatenating the solutions
  /// of consecutive ranges reproduces the full run's solutions in the
  /// same order — the invariant parallel range-chunking relies on.
  void RestrictOuterRange(size_t begin, size_t end) {
    outer_begin_ = begin;
    outer_end_ = end;
  }

  BindingEnv& env() { return env_; }

  /// EXPLAIN ANALYZE hookup: when set (one slot per compiled body
  /// literal), probe/candidate counters are additionally recorded per
  /// literal — at the same sites and with the same chunk-dedup rule as
  /// work_, so per-literal totals reconcile with EvalStats exactly —
  /// and each literal accumulates inclusive wall time. Null (the
  /// default): zero extra work.
  void set_lit_stats(std::vector<LiteralRuntime>* lit_stats) {
    lit_stats_ = lit_stats;
  }

  /// Join-work counters of this execution (see JoinWork).
  const JoinWork& work() const { return work_; }

  /// Number of candidates the outermost body literal ranges over — the
  /// iteration space parallel chunking splits. 0 when the rule cannot be
  /// chunked (empty body, or a builtin/negation was ordered first).
  /// Uses exactly the same candidate selection as execution, so chunk
  /// ranges always cover what EvalAtom enumerates. Index builds it
  /// triggers are counted in work(); probe counters are left untouched
  /// (planning is not evaluation).
  size_t OuterCandidateCount() {
    if (rule_.body.empty() || rule_.body[0].kind != Literal::Kind::kAtom) {
      return 0;
    }
    const Database& source =
        (delta_position_ == 0 && delta_ != nullptr) ? *delta_ : db_;
    return SelectCandidates(rule_.body[0], 0, source).count;
  }

  /// Ground instances of the rule's positive body atoms under the current
  /// (complete) bindings — the premises of the derivation just emitted.
  /// Materializes Values: provenance is a boundary consumer.
  std::vector<std::pair<std::string, Tuple>> GroundPositiveAtoms() const {
    std::vector<std::pair<std::string, Tuple>> out;
    for (const CompiledLiteral& lit : rule_.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      std::vector<Value> values;
      values.reserve(lit.atom.terms.size());
      bool ok = true;
      for (const CompiledTerm& t : lit.atom.terms) {
        const Value* v = TermValue(t);
        if (v == nullptr) {
          ok = false;
          break;
        }
        values.push_back(*v);
      }
      if (ok) out.push_back({lit.atom.predicate, Tuple(std::move(values))});
    }
    return out;
  }

 private:
  /// The term's symbol id under the current bindings. Pre-condition:
  /// the term is ground here (constant, or a slot the compiled order
  /// proved bound) — callers only ask for bound_positions terms.
  SymbolId TermId(const CompiledTerm& t) const {
    return t.is_var ? env_.id(t.slot) : t.const_id;
  }

  /// The term's Value under the current bindings, or nullptr when an
  /// unbound variable (unsafe literal; validated away — fail closed).
  /// This is the id -> Value materialization point for the
  /// Value-semantics literals.
  const Value* TermValue(const CompiledTerm& t) const {
    if (!t.is_var) return &t.constant;
    if (!env_.is_bound(t.slot)) return nullptr;
    return &table_.value(env_.id(t.slot));
  }

  template <typename Fn>
  void Descend(size_t index, Fn&& on_solution) {
    if (index == rule_.body.size()) {
      on_solution(env_);
      return;
    }
    if (lit_stats_ == nullptr) {
      DescendStep(index, on_solution);
      return;
    }
    // ANALYZE: inclusive wall time per literal (this literal plus
    // everything nested inside it in the join tree).
    auto start = std::chrono::steady_clock::now();
    DescendStep(index, on_solution);
    (*lit_stats_)[index].time_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  template <typename Fn>
  void DescendStep(size_t index, Fn&& on_solution) {
    const CompiledLiteral& lit = rule_.body[index];
    switch (lit.kind) {
      case Literal::Kind::kAtom: {
        const Database& source =
            (index == delta_position_ && delta_ != nullptr) ? *delta_ : db_;
        EvalAtom(lit, source, index, on_solution);
        return;
      }
      case Literal::Kind::kNegatedAtom: {
        // Pure id containment check: every ground term resolves to an id
        // (constants were interned at compile; a value nobody interned
        // cannot be stored, so equal Values always share an id here).
        SymbolId local[8];
        std::vector<SymbolId> heap;
        SymbolId* ids = local;
        size_t n = lit.atom.terms.size();
        if (n > 8) {
          heap.resize(n);
          ids = heap.data();
        }
        for (size_t i = 0; i < n; ++i) {
          const CompiledTerm& t = lit.atom.terms[i];
          if (t.is_var && !env_.is_bound(t.slot)) {
            return;  // unsafe (validated away); fail closed
          }
          ids[i] = TermId(t);
        }
        Database::View v = db_.view(lit.atom.predicate);
        bool contained = v.valid() && v.arity() == n && v.ContainsIds(ids);
        if (!contained) Descend(index + 1, on_solution);
        return;
      }
      case Literal::Kind::kComparison: {
        const Value* a = TermValue(lit.lhs);
        const Value* b = TermValue(lit.rhs);
        if (a == nullptr || b == nullptr) return;
        if (EvalCompare(lit.compare_op, *a, *b)) {
          Descend(index + 1, on_solution);
        }
        return;
      }
      case Literal::Kind::kAssignment: {
        const Value* a = TermValue(lit.lhs);
        if (a == nullptr) return;
        std::optional<Value> result;
        if (lit.arith_op == ArithOp::kNone) {
          result = *a;
        } else {
          const Value* b = TermValue(lit.rhs);
          if (b == nullptr) return;
          result = ApplyArith(lit.arith_op, *a, *b);
        }
        if (!result.has_value()) return;  // arithmetic failure: literal false
        if (env_.is_bound(lit.assign_slot)) {
          // Numeric coercion (Int(3) == Double(3.0)) — must compare
          // Values, not ids.
          std::optional<int> cmp =
              CompareValues(table_.value(env_.id(lit.assign_slot)), *result);
          if (cmp.has_value() && *cmp == 0) Descend(index + 1, on_solution);
          return;
        }
        size_t mark = env_.Mark();
        // Computed values (sums, concatenations of ids never seen
        // before) enter the dictionary here — the only intern site on
        // the execution path.
        env_.Bind(lit.assign_slot, table_.Intern(*result));
        Descend(index + 1, on_solution);
        env_.UnwindTo(mark);
        return;
      }
    }
  }

  /// Resolved candidate list for one positive atom under the planner
  /// options. `list == nullptr` means "scan all rows"; `miss` means the
  /// bound prefix matched nothing (zero candidates, distinct from an
  /// empty scan so callers can skip range bookkeeping).
  struct Candidates {
    Database::View view;
    const std::vector<uint32_t>* list = nullptr;
    size_t count = 0;
    bool via_index = false;
    bool miss = false;
  };

  /// Chooses how the atom at body position `index` enumerates facts:
  /// composite bound-prefix index when enabled and the relation is large
  /// enough, single-column seek on the first bound position otherwise,
  /// full scan when nothing is bound or indexes are disabled (the
  /// differential oracle). Shared by EvalAtom and OuterCandidateCount so
  /// parallel chunk planning counts exactly what execution enumerates.
  /// `lit.bound_positions` is static, but it equals the runtime binding
  /// state here because execution follows the compiled order: atoms bind
  /// every variable they mention and assignments always bind theirs.
  Candidates SelectCandidates(const CompiledLiteral& lit, size_t index,
                              const Database& source) {
    Candidates out;
    out.view = source.view(lit.atom.predicate);
    size_t total = out.view.valid() ? out.view.rows() : 0;
    if (lit.bound_positions.empty() || !planner_.indexes) {
      out.count = total;  // full scan (also the indexes=false oracle)
      return out;
    }
    LitIndex& cached = lit_index_[index];
    if (cached.state == LitIndex::kUnknown) {
      cached.state = LitIndex::kUnavailable;
      if (total >= planner_.min_index_size) {
        cached.index = source.EnsureBoundIndex(
            lit.atom.predicate, lit.bound_positions, &work_.index_builds);
        if (cached.index != nullptr) cached.state = LitIndex::kReady;
      }
    }
    if (cached.state == LitIndex::kReady) {
      out.via_index = true;
      // The probe key is a handful of uint32s — hashed without touching
      // a single Value (the point of the columnar layout, DESIGN.md §5j).
      key_scratch_.clear();
      for (size_t pos : lit.bound_positions) {
        key_scratch_.push_back(TermId(lit.atom.terms[pos]));
      }
      auto it = cached.index->buckets.find(key_scratch_);
      if (it == cached.index->buckets.end()) {
        out.miss = true;
        return out;
      }
      out.list = &it->second;
      out.count = out.list->size();
      return out;
    }
    // Small relation: the eager single-column index on the first bound
    // position is cheaper than building a composite index.
    size_t pos = lit.bound_positions[0];
    out.list = out.view.valid()
                   ? out.view.LookupId(pos, TermId(lit.atom.terms[pos]))
                   : nullptr;
    if (out.list == nullptr) {
      out.miss = true;
      return out;
    }
    out.count = out.list->size();
    return out;
  }

  template <typename Fn>
  void EvalAtom(const CompiledLiteral& lit, const Database& source,
                size_t index, Fn&& on_solution) {
    Candidates cand = SelectCandidates(lit, index, source);
    // Chunked runs evaluate literal 0 once per chunk against the same
    // bindings; count its probe only in the first chunk so parallel
    // stats stay bit-identical to sequential ones.
    if (cand.via_index && (index != 0 || outer_begin_ == 0)) {
      ++work_.index_probes;
      if (lit_stats_ != nullptr) ++(*lit_stats_)[index].index_probes;
    }
    if (cand.miss) return;  // no fact matches the bound prefix
    size_t begin = 0;
    size_t end = cand.count;
    if (index == 0) {
      begin = std::min(outer_begin_, cand.count);
      end = std::min(outer_end_, cand.count);
      if (begin > end) begin = end;
    }
    if (cand.via_index) {
      work_.index_candidates += end - begin;
      if (lit_stats_ != nullptr) {
        (*lit_stats_)[index].index_candidates += end - begin;
      }
    } else {
      work_.scan_probes += end - begin;
      if (lit_stats_ != nullptr) (*lit_stats_)[index].scan_probes += end - begin;
    }
    if (begin == end || !cand.view.valid()) return;
    // All rows of a store share its arity, so the row engine's per-fact
    // arity test hoists to one check per call (candidates above were
    // already counted, matching the row engine's bookkeeping).
    size_t n = lit.atom.terms.size();
    if (cand.view.arity() != n) return;
    // The vectorized probe loop: raw column pointers, id comparisons
    // only. No Value is constructed, hashed or compared anywhere below.
    const AtomMatchPlan& plan = lit.match;
    for (size_t ci = begin; ci < end; ++ci) {
      uint32_t row = (cand.list != nullptr) ? (*cand.list)[ci]
                                            : static_cast<uint32_t>(ci);
      bool ok = true;
      for (const AtomMatchPlan::PosId& c : plan.const_checks) {
        if (cand.view.column(c.pos)[row] != c.id) {
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const AtomMatchPlan::PosSlot& c : plan.bound_checks) {
          if (cand.view.column(c.pos)[row] != env_.id(c.slot)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        for (const AtomMatchPlan::PosPos& c : plan.self_checks) {
          if (cand.view.column(c.pos)[row] != cand.view.column(c.other)[row]) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      size_t mark = env_.Mark();
      for (const AtomMatchPlan::PosSlot& b : plan.binds) {
        env_.Bind(b.slot, cand.view.column(b.pos)[row]);
      }
      Descend(index + 1, on_solution);
      env_.UnwindTo(mark);
    }
  }

  /// Per-literal memo of the composite-index decision, so the index map
  /// lookup (and its mutex) is paid once per execution, not per probe.
  struct LitIndex {
    enum State { kUnknown = 0, kUnavailable, kReady };
    State state = kUnknown;
    const BoundIndex* index = nullptr;
  };

  const CompiledRule& rule_;
  const Database& db_;
  const Database* delta_;
  size_t delta_position_;
  PlannerOptions planner_;
  SymbolTable& table_;
  std::vector<LitIndex> lit_index_;
  size_t outer_begin_ = 0;
  size_t outer_end_ = static_cast<size_t>(-1);
  BindingEnv env_;
  JoinWork work_;
  std::vector<SymbolId> key_scratch_;  // composite probe key, reused
  std::vector<LiteralRuntime>* lit_stats_ = nullptr;
};

constexpr size_t kNoDelta = static_cast<size_t>(-1);
constexpr size_t kFullRange = static_cast<size_t>(-1);

/// Derived head rows of one rule evaluation: a flat row-major id buffer
/// (rule.head.terms.size() ids per row) plus an explicit row count — the
/// count cannot be derived from the buffer for zero-arity heads like
/// `ready()`. Derived facts stay ids end to end: they re-enter the
/// database through InsertIds without ever materializing a Value.
struct ProducedRows {
  std::vector<SymbolId> ids;
  size_t rows = 0;
};

void AppendHeadIds(const CompiledRule& rule, const BindingEnv& env,
                   ProducedRows* out) {
  for (const CompiledTerm& t : rule.head.terms) {
    out->ids.push_back(t.is_var ? env.id(t.slot) : t.const_id);
  }
  ++out->rows;
}

/// Materializes one flat id row into a Tuple (boundary consumers only:
/// provenance records).
Tuple IdsToTuple(const SymbolId* ids, size_t n) {
  const SymbolTable& table = SymbolTable::Global();
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) values.push_back(table.value(ids[i]));
  return Tuple(std::move(values));
}

/// Id-level Contains against owned-or-borrowed storage (the provenance
/// duplicate check; mirrors Database::Contains minus the Value->id
/// translation, which the ids already are).
bool DbContainsIds(const Database& db, const std::string& predicate,
                   const SymbolId* ids, size_t n) {
  Database::View v = db.view(predicate);
  return v.valid() && v.arity() == n && v.ContainsIds(ids);
}

/// Evaluates a non-aggregate rule and collects candidate head rows as
/// flat ids (head-arity ids per solution). When `premises_out` is
/// non-null it receives, parallel to the produced rows, the ground
/// positive body atoms of each solution (for provenance).
/// `[outer_begin, outer_end)` restricts the outermost literal's candidate
/// range (parallel chunking); pass 0/kFullRange for a full evaluation.
void EvaluateRule(
    const CompiledRule& rule, const Database& db, const Database* delta,
    size_t delta_position, size_t outer_begin, size_t outer_end,
    const PlannerOptions& planner, ProducedRows* out,
    std::vector<std::vector<std::pair<std::string, Tuple>>>* premises_out =
        nullptr,
    JoinWork* work = nullptr,
    std::vector<LiteralRuntime>* lit_stats = nullptr) {
  RuleExecutor exec(rule, db, delta, delta_position, planner);
  exec.set_lit_stats(lit_stats);
  exec.RestrictOuterRange(outer_begin, outer_end);
  exec.ForEachSolution([&](const BindingEnv& env) {
    AppendHeadIds(rule, env, out);
    if (premises_out != nullptr) {
      premises_out->push_back(exec.GroundPositiveAtoms());
    }
  });
  if (work != nullptr) work->Add(exec.work());
}

/// Evaluates an aggregate rule: groups body solutions by the non-aggregate
/// head terms; each aggregate ranges over the *distinct values* its
/// variable takes within the group (set semantics). Grouping and
/// aggregation materialize Values — min/max/sum need Value ordering and
/// arithmetic, which id identity cannot express.
void EvaluateAggregateRule(const CompiledRule& rule, const Database& db,
                           const PlannerOptions& planner,
                           std::vector<Tuple>* out,
                           JoinWork* work = nullptr,
                           std::vector<LiteralRuntime>* lit_stats = nullptr) {
  struct GroupState {
    std::vector<std::set<Value>> distinct;  // one per aggregate
  };
  std::map<Tuple, GroupState> groups;
  const SymbolTable& table = SymbolTable::Global();

  RuleExecutor exec(rule, db, nullptr, kNoDelta, planner);
  exec.set_lit_stats(lit_stats);
  exec.ForEachSolution([&](const BindingEnv& env) {
    std::vector<Value> key;
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      bool is_agg = false;
      for (const AggSpec& spec : rule.aggregates) {
        if (spec.head_position == i) {
          is_agg = true;
          break;
        }
      }
      if (is_agg) continue;
      const CompiledTerm& t = rule.head.terms[i];
      key.push_back(t.is_var ? table.value(env.id(t.slot)) : t.constant);
    }
    GroupState& state = groups[Tuple(std::move(key))];
    if (state.distinct.empty()) state.distinct.resize(rule.aggregates.size());
    for (size_t a = 0; a < rule.aggregates.size(); ++a) {
      state.distinct[a].insert(table.value(env.id(rule.aggregates[a].slot)));
    }
  });

  if (work != nullptr) work->Add(exec.work());

  for (const auto& [key, state] : groups) {
    std::vector<Value> values(rule.head.terms.size());
    size_t key_index = 0;
    for (size_t i = 0; i < rule.head.terms.size(); ++i) {
      bool is_agg = false;
      for (size_t a = 0; a < rule.aggregates.size(); ++a) {
        if (rule.aggregates[a].head_position == i) {
          const std::set<Value>& vals = state.distinct[a];
          switch (rule.aggregates[a].func) {
            case AggFunc::kCount:
              values[i] = Value::Int(static_cast<int64_t>(vals.size()));
              break;
            case AggFunc::kMin:
              values[i] = vals.empty() ? Value::Null() : *vals.begin();
              break;
            case AggFunc::kMax:
              values[i] = vals.empty() ? Value::Null() : *vals.rbegin();
              break;
            case AggFunc::kSum:
            case AggFunc::kAvg: {
              double sum = 0.0;
              bool all_int = true;
              size_t n = 0;
              for (const Value& v : vals) {
                std::optional<double> d = v.AsDouble();
                if (!d.has_value()) continue;
                if (v.type() != ValueType::kInt) all_int = false;
                sum += *d;
                ++n;
              }
              if (rule.aggregates[a].func == AggFunc::kAvg) {
                values[i] = (n == 0) ? Value::Null() : Value::Double(sum / n);
              } else {
                values[i] = all_int ? Value::Int(static_cast<int64_t>(sum))
                                    : Value::Double(sum);
              }
              break;
            }
          }
          is_agg = true;
          break;
        }
      }
      if (!is_agg) {
        values[i] = key.at(key_index++);
      }
    }
    out->push_back(Tuple(std::move(values)));
  }
}

// ---------------------------------------------------------------------------
// EXPLAIN support (datalog/explain.h). Only materialized when a caller
// asks for a plan; Run() never touches any of this.
// ---------------------------------------------------------------------------

/// Predicts the access path SelectCandidates will choose for `lit`
/// against `db` (the stratum-start state). Delta-restricted recursive
/// occurrences resolve against the round's delta at run time and may
/// differ; ANALYZE's actual counters capture that.
std::string PredictAccess(const CompiledLiteral& lit, const Database* db,
                          const PlannerOptions& planner) {
  switch (lit.kind) {
    case Literal::Kind::kAtom:
      if (lit.bound_positions.empty() || !planner.indexes) return "scan";
      if (db != nullptr &&
          db->FactCount(lit.atom.predicate) >= planner.min_index_size) {
        return "index";
      }
      return "seek";
    case Literal::Kind::kNegatedAtom:
      return "check";
    case Literal::Kind::kComparison:
    case Literal::Kind::kAssignment:
      return "filter";
  }
  return "?";
}

const char* LiteralKindName(Literal::Kind kind) {
  switch (kind) {
    case Literal::Kind::kAtom:
      return "atom";
    case Literal::Kind::kNegatedAtom:
      return "negation";
    case Literal::Kind::kComparison:
      return "comparison";
    case Literal::Kind::kAssignment:
      return "assignment";
  }
  return "?";
}

RuleExplain BuildRuleExplain(const CompiledRule& rule, const Database* db,
                             const PlannerOptions& planner) {
  RuleExplain out;
  out.text = rule.text;
  out.aggregate = !rule.aggregates.empty();
  out.literals.reserve(rule.body.size());
  for (const CompiledLiteral& lit : rule.body) {
    LiteralExplain le;
    le.body_index = lit.body_index;
    if (rule.source != nullptr && lit.body_index < rule.source->body.size()) {
      le.text = rule.source->body[lit.body_index].ToString();
    }
    le.kind = LiteralKindName(lit.kind);
    le.bound_positions = lit.bound_positions;
    le.estimated_cost = lit.estimated_cost;
    le.static_prior = lit.static_prior;
    le.access = PredictAccess(lit, db, planner);
    out.literals.push_back(std::move(le));
  }
  return out;
}

}  // namespace

Evaluator::Evaluator(Program program, EvalOptions options)
    : program_(std::move(program)), options_(options) {}

Status Evaluator::Prepare() {
  VADA_RETURN_IF_ERROR(program_.Validate());
  Result<Stratification> strat = Stratify(program_);
  if (!strat.ok()) return strat.status();
  stratification_ = std::move(strat).value();
  prepared_ = true;
  return Status::OK();
}

Status Evaluator::Run(Database* db, EvalStats* stats,
                      Provenance* provenance) {
  return RunInternal(db, stats, provenance, nullptr);
}

Status Evaluator::RunIncrement(Database* db, const Database& delta,
                               EvalStats* stats, Database* added) {
  if (!prepared_) {
    return Status::FailedPrecondition("Evaluator::Prepare() was not called");
  }
  for (const Rule& r : program_.rules) {
    if (r.HasAggregates()) {
      return Status::FailedPrecondition(
          "RunIncrement does not maintain aggregates: " + r.ToString());
    }
    for (const Literal& l : r.body) {
      if (l.kind == Literal::Kind::kNegatedAtom) {
        return Status::FailedPrecondition(
            "RunIncrement does not maintain negation: " + r.ToString());
      }
    }
  }
  EvalStats local_stats;
  EvalStats* st = (stats != nullptr) ? stats : &local_stats;

  // Compile every rule once. Unlike RunInternal, *every* positive body
  // atom is a candidate delta occurrence — the insertions may touch any
  // predicate, not just same-stratum ones — so the stratum-predicate
  // set only drives the (here unused) recursion flag.
  std::set<std::string> head_preds;
  for (const Rule& r : program_.rules) head_preds.insert(r.head.predicate);
  std::vector<CompiledRule> rules;
  std::vector<std::vector<size_t>> atom_positions;
  rules.reserve(program_.rules.size());
  for (const Rule& r : program_.rules) {
    RuleCompiler compiler(head_preds, db, options_.planner);
    rules.push_back(compiler.Compile(r));
    std::vector<size_t> positions;
    for (size_t i = 0; i < rules.back().body.size(); ++i) {
      if (rules.back().body[i].kind == Literal::Kind::kAtom) {
        positions.push_back(i);
      }
    }
    atom_positions.push_back(std::move(positions));
  }

  // Any new derivation uses at least one delta fact; restricting one
  // occurrence at a time to the delta (others read the already-updated
  // db) enumerates each at least once, and InsertIds dedups overlap.
  const Database* current = &delta;
  Database next_delta;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    if (current->TotalFacts() == 0) break;
    ++st->iterations;
    Database produced;
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      const CompiledRule& rule = rules[ri];
      size_t head_arity = rule.head.terms.size();
      for (size_t pos : atom_positions[ri]) {
        if (current->FactCount(rule.body[pos].atom.predicate) == 0) continue;
        ++st->rule_applications;
        ProducedRows out;
        JoinWork work;
        EvaluateRule(rule, *db, current, pos, 0, kFullRange, options_.planner,
                     &out, nullptr, &work, nullptr);
        work.MergeInto(st);
        for (size_t i = 0; i < out.rows; ++i) {
          const SymbolId* row = out.ids.data() + i * head_arity;
          if (db->InsertIds(rule.head.predicate, row, head_arity)) {
            ++st->facts_derived;
            produced.InsertIds(rule.head.predicate, row, head_arity);
            if (added != nullptr) {
              added->InsertIds(rule.head.predicate, row, head_arity);
            }
          }
        }
      }
    }
    next_delta = std::move(produced);
    current = &next_delta;
    if (iter + 1 == options_.max_iterations && current->TotalFacts() != 0) {
      return Status::Internal("incremental evaluation exceeded max_iterations");
    }
  }
  return Status::OK();
}

Status Evaluator::Explain(Database* db, PlanExplain* out, bool analyze,
                          EvalStats* stats) {
  if (!prepared_) {
    return Status::FailedPrecondition("Evaluator::Prepare() was not called");
  }
  if (out == nullptr) {
    return Status::InvalidArgument("Explain requires a PlanExplain output");
  }
  out->strata.clear();
  out->analyzed = analyze;
  if (analyze) return RunInternal(db, stats, nullptr, out);

  // Compile-only pass: plan every stratum against the database as-is,
  // mirroring RunInternal's aggregate-rules-first ordering so EXPLAIN
  // and EXPLAIN ANALYZE render rules in the same sequence.
  for (const std::vector<std::string>& stratum : stratification_.strata) {
    std::set<std::string> stratum_preds(stratum.begin(), stratum.end());
    StratumExplain sx;
    sx.predicates = stratum;
    std::vector<RuleExplain> normal;
    for (const Rule& r : program_.rules) {
      if (stratum_preds.count(r.head.predicate) == 0) continue;
      RuleCompiler compiler(stratum_preds, db, options_.planner);
      CompiledRule cr = compiler.Compile(r);
      RuleExplain rex = BuildRuleExplain(cr, db, options_.planner);
      if (rex.aggregate) {
        sx.rules.push_back(std::move(rex));
      } else {
        normal.push_back(std::move(rex));
      }
    }
    for (RuleExplain& rex : normal) sx.rules.push_back(std::move(rex));
    out->strata.push_back(std::move(sx));
  }
  return Status::OK();
}

Status Evaluator::RunInternal(Database* db, EvalStats* stats,
                              Provenance* provenance, PlanExplain* explain) {
  if (!prepared_) {
    return Status::FailedPrecondition("Evaluator::Prepare() was not called");
  }
  EvalStats local_stats;
  EvalStats* st = (stats != nullptr) ? stats : &local_stats;
  obs::Histogram* stratum_hist =
      options_.metrics == nullptr
          ? nullptr
          : options_.metrics->GetHistogram(
                "vada_datalog_stratum_seconds",
                "Wall time per stratum fixpoint",
                obs::Histogram::DefaultLatencyBucketsSeconds());

  for (const std::vector<std::string>& stratum : stratification_.strata) {
    obs::ScopedSpan stratum_span(nullptr, stratum_hist, "stratum");
    std::set<std::string> stratum_preds(stratum.begin(), stratum.end());

    // Compile this stratum's rules.
    std::vector<CompiledRule> normal_rules;
    std::vector<CompiledRule> aggregate_rules;
    for (const Rule& r : program_.rules) {
      if (stratum_preds.count(r.head.predicate) == 0) continue;
      RuleCompiler compiler(stratum_preds, db, options_.planner);
      CompiledRule cr = compiler.Compile(r);
      if (cr.aggregates.empty()) {
        normal_rules.push_back(std::move(cr));
      } else {
        aggregate_rules.push_back(std::move(cr));
      }
    }

    // EXPLAIN ANALYZE bookkeeping: one RuleExplain per compiled rule,
    // aggregates first to match execution order. The pointers stay
    // valid because sx.rules is fully reserved before any is taken.
    std::vector<RuleExplain*> agg_rex(aggregate_rules.size(), nullptr);
    std::vector<RuleExplain*> normal_rex(normal_rules.size(), nullptr);
    if (explain != nullptr) {
      explain->strata.emplace_back();
      StratumExplain& sx = explain->strata.back();
      sx.predicates = stratum;
      sx.rules.reserve(aggregate_rules.size() + normal_rules.size());
      for (size_t i = 0; i < aggregate_rules.size(); ++i) {
        sx.rules.push_back(
            BuildRuleExplain(aggregate_rules[i], db, options_.planner));
        agg_rex[i] = &sx.rules.back();
      }
      for (size_t i = 0; i < normal_rules.size(); ++i) {
        sx.rules.push_back(
            BuildRuleExplain(normal_rules[i], db, options_.planner));
        normal_rex[i] = &sx.rules.back();
      }
    }

    // Aggregate rules first: stratification guarantees their bodies are
    // complete (all body predicates lie in strictly lower strata).
    for (size_t ri = 0; ri < aggregate_rules.size(); ++ri) {
      const CompiledRule& rule = aggregate_rules[ri];
      RuleExplain* rex = agg_rex[ri];
      ++st->rule_applications;
      if (rex != nullptr) ++rex->applications;
      std::vector<Tuple> produced;
      JoinWork agg_work;
      std::vector<LiteralRuntime> lit_rt;
      if (rex != nullptr) lit_rt.resize(rule.body.size());
      EvaluateAggregateRule(rule, *db, options_.planner, &produced, &agg_work,
                            rex != nullptr && !lit_rt.empty() ? &lit_rt
                                                              : nullptr);
      agg_work.MergeInto(st);
      if (rex != nullptr) {
        for (size_t i = 0; i < lit_rt.size(); ++i) {
          rex->literals[i].actual.Add(lit_rt[i]);
        }
      }
      for (Tuple& t : produced) {
        if (provenance != nullptr && !db->Contains(rule.head.predicate, t)) {
          // Aggregates summarise whole groups; record the rule alone.
          provenance->Record(rule.head.predicate, t, Derivation{rule.text, {}});
        }
        if (db->Insert(rule.head.predicate, t)) {
          ++st->facts_derived;
          if (rex != nullptr) ++rex->facts_derived;
        }
      }
    }

    if (normal_rules.empty()) continue;

    if (!options_.semi_naive) {
      // Naive fixpoint: re-evaluate everything until no new facts.
      for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
        ++st->iterations;
        bool any_new = false;
        for (size_t ri = 0; ri < normal_rules.size(); ++ri) {
          const CompiledRule& rule = normal_rules[ri];
          RuleExplain* rex = normal_rex[ri];
          ++st->rule_applications;
          if (rex != nullptr) ++rex->applications;
          ProducedRows produced;
          std::vector<std::vector<std::pair<std::string, Tuple>>> premises;
          JoinWork naive_work;
          std::vector<LiteralRuntime> lit_rt;
          if (rex != nullptr) lit_rt.resize(rule.body.size());
          EvaluateRule(rule, *db, nullptr, kNoDelta, 0, kFullRange,
                       options_.planner, &produced,
                       provenance != nullptr ? &premises : nullptr,
                       &naive_work,
                       rex != nullptr && !lit_rt.empty() ? &lit_rt : nullptr);
          naive_work.MergeInto(st);
          if (rex != nullptr) {
            for (size_t i = 0; i < lit_rt.size(); ++i) {
              rex->literals[i].actual.Add(lit_rt[i]);
            }
          }
          size_t head_arity = rule.head.terms.size();
          for (size_t i = 0; i < produced.rows; ++i) {
            const SymbolId* row = produced.ids.data() + i * head_arity;
            if (provenance != nullptr &&
                !DbContainsIds(*db, rule.head.predicate, row, head_arity)) {
              provenance->Record(rule.head.predicate,
                                 IdsToTuple(row, head_arity),
                                 Derivation{rule.text, premises[i]});
            }
            if (db->InsertIds(rule.head.predicate, row, head_arity)) {
              ++st->facts_derived;
              any_new = true;
              if (rex != nullptr) ++rex->facts_derived;
            }
          }
        }
        if (!any_new) break;
        if (iter + 1 == options_.max_iterations) {
          return Status::Internal("naive evaluation exceeded max_iterations");
        }
      }
      continue;
    }

    // Semi-naive with batch rounds: round 0 evaluates every rule in
    // full; later rounds evaluate only recursive rules, once per
    // recursive occurrence with that occurrence restricted to the
    // previous round's delta. Every task of a round reads the same
    // immutable round-start state and results are merged in fixed task
    // order, so the rules of a round are embarrassingly parallel and a
    // pool run is bit-identical to an inline run — same facts, same
    // per-predicate order, same EvalStats (DESIGN.md §5e). Large tasks
    // are further split into outer-candidate ranges; concatenating
    // range results reproduces the unchunked enumeration order exactly.
    struct RuleTask {
      const CompiledRule* rule = nullptr;
      RuleExplain* rex = nullptr;  // EXPLAIN ANALYZE target, else null
      size_t delta_position = kNoDelta;
      size_t outer_begin = 0;
      size_t outer_end = kFullRange;
      ProducedRows produced;
      std::vector<std::vector<std::pair<std::string, Tuple>>> premises;
      JoinWork work;
      std::vector<LiteralRuntime> lit_stats;  // filled iff rex != nullptr
    };
    ThreadPool* pool =
        (options_.pool != nullptr && options_.pool->workers() > 0)
            ? options_.pool
            : nullptr;

    auto plan_rule = [&](const CompiledRule& rule, RuleExplain* rex,
                         size_t delta_position, const Database* delta,
                         std::vector<RuleTask>* tasks) {
      ++st->rule_applications;
      if (rex != nullptr) ++rex->applications;
      RuleTask task;
      task.rule = &rule;
      task.rex = rex;
      task.delta_position = delta_position;
      size_t chunks = 1;
      size_t count = 0;
      if (pool != nullptr) {
        // The planning executor shares EvalAtom's candidate selection, so
        // any index it builds is the one execution will probe; credit the
        // build to this rule's stats.
        RuleExecutor probe(rule, *db, delta, delta_position, options_.planner);
        count = probe.OuterCandidateCount();
        st->index_builds += probe.work().index_builds;
        if (count >= options_.parallel_chunk_threshold) {
          chunks = std::min(pool->workers() + 1, count);
        }
      }
      if (chunks <= 1) {
        tasks->push_back(std::move(task));
        return;
      }
      size_t base = count / chunks;
      size_t rem = count % chunks;
      size_t begin = 0;
      for (size_t c = 0; c < chunks; ++c) {
        size_t len = base + (c < rem ? 1 : 0);
        RuleTask chunk = task;
        chunk.outer_begin = begin;
        chunk.outer_end = begin + len;
        begin += len;
        tasks->push_back(std::move(chunk));
      }
    };

    auto run_tasks = [&](std::vector<RuleTask>* tasks, const Database* delta) {
      auto eval_one = [&](size_t i) {
        RuleTask& task = (*tasks)[i];
        if (task.rex != nullptr) task.lit_stats.resize(task.rule->body.size());
        EvaluateRule(*task.rule, *db, delta, task.delta_position,
                     task.outer_begin, task.outer_end, options_.planner,
                     &task.produced,
                     provenance != nullptr ? &task.premises : nullptr,
                     &task.work,
                     task.lit_stats.empty() ? nullptr : &task.lit_stats);
      };
      if (pool != nullptr && tasks->size() > 1) {
        pool->ParallelFor(tasks->size(), eval_one);
      } else {
        for (size_t i = 0; i < tasks->size(); ++i) eval_one(i);
      }
    };

    auto merge_tasks = [&](std::vector<RuleTask>* tasks,
                           Database* delta_out) {
      for (RuleTask& task : *tasks) {
        task.work.MergeInto(st);
        if (task.rex != nullptr) {
          for (size_t i = 0; i < task.lit_stats.size(); ++i) {
            task.rex->literals[i].actual.Add(task.lit_stats[i]);
          }
        }
        const CompiledRule& rule = *task.rule;
        size_t head_arity = rule.head.terms.size();
        for (size_t i = 0; i < task.produced.rows; ++i) {
          const SymbolId* row = task.produced.ids.data() + i * head_arity;
          if (provenance != nullptr &&
              !DbContainsIds(*db, rule.head.predicate, row, head_arity)) {
            provenance->Record(rule.head.predicate,
                               IdsToTuple(row, head_arity),
                               Derivation{rule.text, task.premises[i]});
          }
          if (db->InsertIds(rule.head.predicate, row, head_arity)) {
            ++st->facts_derived;
            if (task.rex != nullptr) ++task.rex->facts_derived;
            delta_out->InsertIds(rule.head.predicate, row, head_arity);
          }
        }
      }
    };

    Database delta;
    ++st->iterations;
    {
      std::vector<RuleTask> tasks;
      for (size_t ri = 0; ri < normal_rules.size(); ++ri) {
        plan_rule(normal_rules[ri], normal_rex[ri], kNoDelta, nullptr, &tasks);
      }
      run_tasks(&tasks, nullptr);
      merge_tasks(&tasks, &delta);
    }

    for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
      if (delta.TotalFacts() == 0) break;
      ++st->iterations;
      Database next_delta;
      std::vector<RuleTask> tasks;
      for (size_t ri = 0; ri < normal_rules.size(); ++ri) {
        const CompiledRule& rule = normal_rules[ri];
        for (size_t pos : rule.recursive_positions) {
          if (delta.FactCount(rule.body[pos].atom.predicate) == 0) continue;
          plan_rule(rule, normal_rex[ri], pos, &delta, &tasks);
        }
      }
      run_tasks(&tasks, &delta);
      merge_tasks(&tasks, &next_delta);
      delta = std::move(next_delta);
      if (iter + 1 == options_.max_iterations && delta.TotalFacts() != 0) {
        return Status::Internal("semi-naive evaluation exceeded max_iterations");
      }
    }
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m->GetCounter("vada_datalog_rules_fired",
                  "Rule body evaluations attempted")
        ->Increment(st->rule_applications);
    m->GetCounter("vada_datalog_facts_derived", "New IDB facts derived")
        ->Increment(st->facts_derived);
    m->GetCounter("vada_datalog_iterations",
                  "Fixpoint rounds across all strata")
        ->Increment(st->iterations);
    m->GetCounter("vada_datalog_join_probes",
                  "Candidate facts scanned by non-indexed body atoms "
                  "(full scans and single-column seeks)")
        ->Increment(st->join_probes);
    m->GetCounter("vada_datalog_index_probes_total",
                  "Composite hash-index lookups by body atoms")
        ->Increment(st->index_probes);
    m->GetCounter("vada_datalog_index_candidates_total",
                  "Facts enumerated from composite index buckets")
        ->Increment(st->index_candidates);
    m->GetCounter("vada_datalog_index_builds_total",
                  "Composite hash indexes built lazily")
        ->Increment(st->index_builds);
    // One sample per run: fraction of join work resolved through
    // composite indexes (probe-vs-scan mix; 1.0 = fully indexed).
    size_t total_work = st->join_probes + st->index_probes +
                        st->index_candidates;
    if (total_work > 0) {
      m->GetHistogram("vada_datalog_indexed_work_ratio",
                      "Share of join work served by composite indexes",
                      {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99})
          ->Observe(static_cast<double>(st->index_probes +
                                        st->index_candidates) /
                    static_cast<double>(total_work));
    }
    m->GetCounter("vada_datalog_evaluations", "Evaluator::Run invocations")
        ->Increment();
  }
  return Status::OK();
}

Result<std::vector<Tuple>> Query(const Program& program, Database* db,
                                 const std::string& goal_predicate,
                                 const EvalOptions& options) {
  // Opt-in goal-directed rewrite: the optimized program derives exactly
  // the same goal facts (the differential fuzz harness checks this
  // bit-for-bit), so Query — which only exposes the goal relation — may
  // substitute it freely. The static cardinality bounds computed along
  // the way become the planner's priors for still-empty IDB relations.
  const Program* to_run = &program;
  dataflow::OptimizeResult optimized;
  EvalOptions eval_options = options;
  if (options.planner.optimize) {
    dataflow::EdbSeeds seeds = dataflow::SeedsFromDatabase(*db);
    optimized = dataflow::OptimizeProgram(program, goal_predicate, seeds);
    to_run = &optimized.program;
    dataflow::DataflowOptions dopt;
    dopt.assume_unknown_nonempty = false;
    dataflow::DataflowResult df =
        dataflow::AnalyzeDataflow(optimized.program, seeds, dopt);
    eval_options.planner.priors =
        std::make_shared<const std::map<std::string, size_t>>(
            df.CardinalityPriors());
  }
  Evaluator eval(*to_run, eval_options);
  VADA_RETURN_IF_ERROR(eval.Prepare());
  VADA_RETURN_IF_ERROR(eval.Run(db));
  std::vector<Tuple> out = db->facts(goal_predicate);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace vada::datalog
