#include "datalog/parser.h"

#include <optional>
#include <vector>

#include "datalog/lexer.h"

namespace vada::datalog {

namespace {

/// Token-stream cursor with one-token lookahead helpers.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
    return tokens_[i];
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " +
                              std::to_string(Peek().line) + ", col " +
                              std::to_string(Peek().col));
  }

  SourcePos Pos() const { return SourcePos{Peek().line, Peek().col}; }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Error(std::string("expected ") + what);
    }
    Next();
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

std::optional<AggFunc> AggFuncFromName(const std::string& name) {
  if (name == "count") return AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "avg") return AggFunc::kAvg;
  return std::nullopt;
}

std::optional<CompareOp> CompareOpFromToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq:
      return CompareOp::kEq;
    case TokenKind::kNe:
      return CompareOp::kNe;
    case TokenKind::kLt:
      return CompareOp::kLt;
    case TokenKind::kLe:
      return CompareOp::kLe;
    case TokenKind::kGt:
      return CompareOp::kGt;
    case TokenKind::kGe:
      return CompareOp::kGe;
    default:
      return std::nullopt;
  }
}

std::optional<ArithOp> ArithOpFromToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus:
      return ArithOp::kAdd;
    case TokenKind::kMinus:
      return ArithOp::kSub;
    case TokenKind::kStar:
      return ArithOp::kMul;
    case TokenKind::kSlash:
      return ArithOp::kDiv;
    default:
      return std::nullopt;
  }
}

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : cursor_(std::move(tokens)) {}

  Result<Program> ParseProgram(bool validate) {
    Program program;
    while (!cursor_.AtEnd()) {
      Result<Rule> rule = ParseClause();
      if (!rule.ok()) return rule.status();
      program.rules.push_back(std::move(rule).value());
    }
    if (validate) {
      Status s = program.Validate();
      if (!s.ok()) return s;
    }
    return program;
  }

  Result<Rule> ParseClause() {
    Rule rule;
    Result<Atom> head = ParseAtom(/*allow_aggregates=*/true);
    if (!head.ok()) return head.status();
    rule.head = std::move(head).value();
    rule.pos = rule.head.pos;
    if (cursor_.Peek().kind == TokenKind::kImplies) {
      cursor_.Next();
      while (true) {
        Result<Literal> lit = ParseLiteral();
        if (!lit.ok()) return lit.status();
        rule.body.push_back(std::move(lit).value());
        if (cursor_.Peek().kind == TokenKind::kComma) {
          cursor_.Next();
          continue;
        }
        break;
      }
    }
    VADA_RETURN_IF_ERROR(cursor_.Expect(TokenKind::kDot, "'.'"));
    return rule;
  }

 private:
  Result<Literal> ParseLiteral() {
    const SourcePos literal_pos = cursor_.Pos();
    if (cursor_.Peek().kind == TokenKind::kNot) {
      cursor_.Next();
      Result<Atom> atom = ParseAtom(/*allow_aggregates=*/false);
      if (!atom.ok()) return atom.status();
      Literal lit = Literal::Negative(std::move(atom).value());
      lit.pos = literal_pos;
      return lit;
    }
    // Atom: identifier followed by '('.
    if (cursor_.Peek().kind == TokenKind::kIdent &&
        cursor_.Peek(1).kind == TokenKind::kLParen) {
      Result<Atom> atom = ParseAtom(/*allow_aggregates=*/false);
      if (!atom.ok()) return atom.status();
      Literal lit = Literal::Positive(std::move(atom).value());
      lit.pos = literal_pos;
      return lit;
    }
    // Assignment: VAR '=' term [arith term].
    if (cursor_.Peek().kind == TokenKind::kVariable &&
        cursor_.Peek(1).kind == TokenKind::kEq) {
      std::string var = cursor_.Next().text;
      cursor_.Next();  // '='
      Result<Term> lhs = ParseTerm();
      if (!lhs.ok()) return lhs.status();
      std::optional<ArithOp> arith = ArithOpFromToken(cursor_.Peek().kind);
      Literal lit;
      if (arith.has_value()) {
        cursor_.Next();
        Result<Term> rhs = ParseTerm();
        if (!rhs.ok()) return rhs.status();
        lit = Literal::Assignment(std::move(var), std::move(lhs).value(),
                                  *arith, std::move(rhs).value());
      } else {
        lit = Literal::Assignment(std::move(var), std::move(lhs).value(),
                                  ArithOp::kNone,
                                  Term::Constant(Value::Null()));
      }
      lit.pos = literal_pos;
      return lit;
    }
    // Comparison: term op term.
    Result<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    std::optional<CompareOp> op = CompareOpFromToken(cursor_.Peek().kind);
    if (!op.has_value()) {
      return cursor_.Error("expected comparison operator");
    }
    cursor_.Next();
    Result<Term> rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    Literal lit = Literal::Comparison(std::move(lhs).value(), *op,
                                      std::move(rhs).value());
    lit.pos = literal_pos;
    return lit;
  }

  Result<Atom> ParseAtom(bool allow_aggregates) {
    if (cursor_.Peek().kind != TokenKind::kIdent) {
      return cursor_.Error("expected predicate name");
    }
    Atom atom;
    atom.pos = cursor_.Pos();
    atom.predicate = cursor_.Next().text;
    VADA_RETURN_IF_ERROR(cursor_.Expect(TokenKind::kLParen, "'('"));
    if (cursor_.Peek().kind == TokenKind::kRParen) {
      cursor_.Next();
      return atom;
    }
    while (true) {
      // Aggregate term: aggfunc '<' VAR '>'.
      if (allow_aggregates && cursor_.Peek().kind == TokenKind::kIdent &&
          AggFuncFromName(cursor_.Peek().text).has_value() &&
          cursor_.Peek(1).kind == TokenKind::kLt) {
        const SourcePos agg_pos = cursor_.Pos();
        AggFunc func = *AggFuncFromName(cursor_.Next().text);
        cursor_.Next();  // '<'
        if (cursor_.Peek().kind != TokenKind::kVariable) {
          return cursor_.Error("expected variable inside aggregate");
        }
        std::string var = cursor_.Next().text;
        VADA_RETURN_IF_ERROR(cursor_.Expect(TokenKind::kGt, "'>'"));
        Term term = Term::Aggregate(func, std::move(var));
        term.set_pos(agg_pos);
        atom.terms.push_back(std::move(term));
      } else {
        Result<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        atom.terms.push_back(std::move(term).value());
      }
      if (cursor_.Peek().kind == TokenKind::kComma) {
        cursor_.Next();
        continue;
      }
      break;
    }
    VADA_RETURN_IF_ERROR(cursor_.Expect(TokenKind::kRParen, "')'"));
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& t = cursor_.Peek();
    const SourcePos pos = cursor_.Pos();
    auto at = [&pos](Term term) {
      term.set_pos(pos);
      return term;
    };
    switch (t.kind) {
      case TokenKind::kVariable: {
        std::string name = cursor_.Next().text;
        return at(Term::Variable(std::move(name)));
      }
      case TokenKind::kInt: {
        int64_t v = cursor_.Next().int_value;
        return at(Term::Constant(Value::Int(v)));
      }
      case TokenKind::kDouble: {
        double v = cursor_.Next().double_value;
        return at(Term::Constant(Value::Double(v)));
      }
      case TokenKind::kString: {
        std::string s = cursor_.Next().text;
        return at(Term::Constant(Value::String(std::move(s))));
      }
      case TokenKind::kIdent: {
        std::string word = cursor_.Next().text;
        if (word == "true") return at(Term::Constant(Value::Bool(true)));
        if (word == "false") return at(Term::Constant(Value::Bool(false)));
        if (word == "null") return at(Term::Constant(Value::Null()));
        return at(Term::Constant(Value::String(std::move(word))));
      }
      default:
        return cursor_.Error("expected term");
    }
  }

  TokenCursor cursor_;
};

}  // namespace

Result<Program> Parser::Parse(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  ParserImpl impl(std::move(tokens).value());
  return impl.ParseProgram(/*validate=*/true);
}

Result<Program> Parser::ParseUnvalidated(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  ParserImpl impl(std::move(tokens).value());
  return impl.ParseProgram(/*validate=*/false);
}

Result<Rule> Parser::ParseRule(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  ParserImpl impl(std::move(tokens).value());
  Result<Rule> rule = impl.ParseClause();
  if (!rule.ok()) return rule.status();
  Status s = ValidateRule(rule.value());
  if (!s.ok()) return s;
  return rule;
}

}  // namespace vada::datalog
