#ifndef VADA_DATALOG_PARSER_H_
#define VADA_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace vada::datalog {

/// Recursive-descent parser for Vadalog-lite.
///
/// Grammar (informally):
///   program  := clause*
///   clause   := atom [ ":-" literal ("," literal)* ] "."
///   literal  := "not" atom | atom | builtin
///   builtin  := VAR "=" term [ ("+"|"-"|"*"|"/") term ]   (assignment)
///             | term ("="|"!="|"<>"|"<"|"<="|">"|">=") term (comparison)
///   term     := VAR | INT | DOUBLE | STRING | IDENT
/// Head atoms may additionally contain aggregate terms:
///   count<X>, sum<X>, min<X>, max<X>, avg<X>
/// Symbol identifiers (lowercase) denote string constants; `true`,
/// `false` and `null` are the usual literals. Comments: '%' or "//".
///
/// Assignment `X = t` binds X when unbound and filters on equality when
/// already bound (unification semantics).
class Parser {
 public:
  /// Parses a whole program and validates it (safety, aggregates).
  static Result<Program> Parse(std::string_view source);

  /// Parses a whole program without running Program::Validate(). Used by
  /// the static analyzer (datalog/analysis), which reports safety
  /// violations as structured diagnostics instead of a single error.
  static Result<Program> ParseUnvalidated(std::string_view source);

  /// Parses exactly one clause.
  static Result<Rule> ParseRule(std::string_view source);
};

}  // namespace vada::datalog

#endif  // VADA_DATALOG_PARSER_H_
