#ifndef VADA_DATALOG_LEXER_H_
#define VADA_DATALOG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vada::datalog {

/// Token kinds produced by the Vadalog-lite lexer.
enum class TokenKind {
  kIdent,     ///< lowercase-initial identifier (predicate or symbol constant)
  kVariable,  ///< uppercase- or underscore-initial identifier
  kInt,
  kDouble,
  kString,    ///< double-quoted; backslash escapes quote and backslash
  kLParen,
  kRParen,
  kComma,
  kDot,
  kImplies,   ///< ":-"
  kNot,       ///< keyword "not" (or "!")
  kEq,        ///< "="
  kNe,        ///< "!=" or "<>"
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   ///< raw text (identifier/variable/string payload)
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 1;       ///< 1-based source line, for error messages
  int col = 1;        ///< 1-based column of the token's first character
};

/// Tokenizes Vadalog-lite source. Comments run from '%' or "//" to end of
/// line. Returns a token list ending with kEnd, or a parse error naming
/// the offending line.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace vada::datalog

#endif  // VADA_DATALOG_LEXER_H_
