#include "context/ahp.h"

#include <cmath>

namespace vada {

double SaatyRandomIndex(size_t n) {
  // Saaty (1980) random index table; values beyond 10 plateau at ~1.49.
  static const double kRi[] = {0.0,  0.0,  0.0,  0.58, 0.90, 1.12,
                               1.24, 1.32, 1.41, 1.45, 1.49};
  if (n < sizeof(kRi) / sizeof(kRi[0])) return kRi[n];
  return 1.49;
}

Result<AhpResult> ComputeAhp(const std::vector<std::vector<double>>& matrix) {
  const size_t n = matrix.size();
  if (n == 0) {
    return Status::InvalidArgument("AHP matrix is empty");
  }
  for (const std::vector<double>& row : matrix) {
    if (row.size() != n) {
      return Status::InvalidArgument("AHP matrix is not square");
    }
    for (double v : row) {
      if (!(v > 0.0)) {
        return Status::InvalidArgument(
            "AHP matrix entries must be positive");
      }
    }
  }

  // Power iteration on the comparison matrix.
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  double lambda = static_cast<double>(n);
  const int kMaxIterations = 500;
  const double kTolerance = 1e-12;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    std::vector<double> next(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        next[i] += matrix[i][j] * w[j];
      }
    }
    double sum = 0.0;
    for (double v : next) sum += v;
    if (sum <= 0.0) {
      return Status::Internal("AHP power iteration degenerated");
    }
    for (double& v : next) v /= sum;
    // Rayleigh-style estimate: average of (Aw)_i / w_i.
    double est = 0.0;
    std::vector<double> aw(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) aw[i] += matrix[i][j] * next[j];
      est += aw[i] / next[i];
    }
    est /= static_cast<double>(n);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - w[i]);
    w = std::move(next);
    lambda = est;
    if (delta < kTolerance) break;
  }

  AhpResult result;
  result.weights = std::move(w);
  result.lambda_max = lambda;
  if (n > 1) {
    result.consistency_index =
        (lambda - static_cast<double>(n)) / (static_cast<double>(n) - 1.0);
    double ri = SaatyRandomIndex(n);
    result.consistency_ratio =
        (ri > 0.0) ? result.consistency_index / ri : 0.0;
  }
  return result;
}

}  // namespace vada
