#include "context/user_context.h"

#include "common/strings.h"
#include "context/ahp.h"

namespace vada {

Result<Importance> ParseImportance(const std::string& phrase) {
  std::string p = ToLower(Trim(phrase));
  // Accept both "very strongly" and "very strongly more important than".
  auto strip = [&p](const char* suffix) {
    std::string s(suffix);
    if (EndsWith(p, s)) p = Trim(p.substr(0, p.size() - s.size()));
  };
  strip("more important than");
  strip("more important");
  if (p == "equally" || p == "equal" || p == "equally important") {
    return Importance::kEqual;
  }
  if (p == "moderately" || p == "moderate") return Importance::kModerate;
  if (p == "strongly" || p == "strong") return Importance::kStrong;
  if (p == "very strongly" || p == "very strong") {
    return Importance::kVeryStrong;
  }
  if (p == "extremely" || p == "extreme" || p == "absolutely") {
    return Importance::kExtreme;
  }
  return Status::InvalidArgument("unknown importance phrase: " + phrase);
}

const char* ImportanceName(Importance level) {
  switch (level) {
    case Importance::kEqual:
      return "equally";
    case Importance::kModerate:
      return "moderately";
    case Importance::kStrong:
      return "strongly";
    case Importance::kVeryStrong:
      return "very strongly";
    case Importance::kExtreme:
      return "extremely";
  }
  return "?";
}

double CriterionWeights::Get(const Criterion& criterion,
                             double fallback) const {
  auto it = weight_of.find(criterion.Id());
  return it == weight_of.end() ? fallback : it->second;
}

void UserContext::AddCriterion(const Criterion& criterion) {
  IndexOf(criterion);
}

int UserContext::IndexOf(const Criterion& criterion) {
  for (size_t i = 0; i < criteria_.size(); ++i) {
    if (criteria_[i] == criterion) return static_cast<int>(i);
  }
  criteria_.push_back(criterion);
  return static_cast<int>(criteria_.size()) - 1;
}

void UserContext::AddStatement(const Criterion& more, const Criterion& less,
                               Importance level) {
  IndexOf(more);
  IndexOf(less);
  statements_.push_back(PairwiseStatement{more, less, level});
}

Status UserContext::AddStatement(const std::string& metric_more,
                                 const std::string& subject_more,
                                 const std::string& level_phrase,
                                 const std::string& metric_less,
                                 const std::string& subject_less) {
  Result<Importance> level = ParseImportance(level_phrase);
  if (!level.ok()) return level.status();
  AddStatement(Criterion{metric_more, subject_more},
               Criterion{metric_less, subject_less}, level.value());
  return Status::OK();
}

Result<CriterionWeights> UserContext::DeriveWeights() const {
  if (criteria_.empty()) {
    return Status::FailedPrecondition("user context has no criteria");
  }
  const size_t n = criteria_.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 1.0));
  for (const PairwiseStatement& s : statements_) {
    int i = -1;
    int j = -1;
    for (size_t k = 0; k < n; ++k) {
      if (criteria_[k] == s.more_important) i = static_cast<int>(k);
      if (criteria_[k] == s.less_important) j = static_cast<int>(k);
    }
    if (i < 0 || j < 0 || i == j) continue;
    double v = static_cast<double>(static_cast<int>(s.level));
    matrix[i][j] = v;
    matrix[j][i] = 1.0 / v;
  }
  Result<AhpResult> ahp = ComputeAhp(matrix);
  if (!ahp.ok()) return ahp.status();
  CriterionWeights out;
  out.consistency_ratio = ahp.value().consistency_ratio;
  for (size_t k = 0; k < n; ++k) {
    out.weight_of[criteria_[k].Id()] = ahp.value().weights[k];
  }
  return out;
}

Relation UserContext::ToRelation(const std::string& relation_name) const {
  Relation rel(Schema::Untyped(relation_name,
                               {"metric_more", "subject_more", "level",
                                "metric_less", "subject_less"}));
  for (const PairwiseStatement& s : statements_) {
    Tuple t({Value::String(s.more_important.metric),
             Value::String(s.more_important.subject),
             Value::Int(static_cast<int>(s.level)),
             Value::String(s.less_important.metric),
             Value::String(s.less_important.subject)});
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

}  // namespace vada
