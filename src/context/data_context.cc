#include "context/data_context.h"

namespace vada {

Status DataContext::AddBinding(DataContextBinding binding) {
  if (binding.kind != RelationRole::kReference &&
      binding.kind != RelationRole::kMaster &&
      binding.kind != RelationRole::kExample) {
    return Status::InvalidArgument(
        "data context kind must be reference, master or example");
  }
  if (binding.context_relation.empty()) {
    return Status::InvalidArgument("data context binding names no relation");
  }
  if (binding.correspondences.empty()) {
    return Status::InvalidArgument(
        "data context binding for " + binding.context_relation +
        " has no attribute correspondences");
  }
  bindings_.push_back(std::move(binding));
  return Status::OK();
}

std::vector<const DataContextBinding*> DataContext::BindingsOfKind(
    RelationRole kind) const {
  std::vector<const DataContextBinding*> out;
  for (const DataContextBinding& b : bindings_) {
    if (b.kind == kind) out.push_back(&b);
  }
  return out;
}

std::optional<std::string> DataContext::ContextAttributeFor(
    const std::string& context_relation,
    const std::string& target_attribute) const {
  for (const DataContextBinding& b : bindings_) {
    if (b.context_relation != context_relation) continue;
    for (const ContextCorrespondence& c : b.correspondences) {
      if (c.target_attribute == target_attribute) return c.context_attribute;
    }
  }
  return std::nullopt;
}

std::vector<const DataContextBinding*> DataContext::BindingsCovering(
    const std::string& target_attribute) const {
  std::vector<const DataContextBinding*> out;
  for (const DataContextBinding& b : bindings_) {
    for (const ContextCorrespondence& c : b.correspondences) {
      if (c.target_attribute == target_attribute) {
        out.push_back(&b);
        break;
      }
    }
  }
  return out;
}

Relation DataContext::ToRelation(const std::string& relation_name) const {
  Relation rel(Schema::Untyped(
      relation_name,
      {"context_relation", "kind", "target_attribute", "context_attribute"}));
  for (const DataContextBinding& b : bindings_) {
    for (const ContextCorrespondence& c : b.correspondences) {
      rel.InsertUnchecked(Tuple({Value::String(b.context_relation),
                                 Value::String(RelationRoleName(b.kind)),
                                 Value::String(c.target_attribute),
                                 Value::String(c.context_attribute)}));
    }
  }
  return rel;
}

}  // namespace vada
