#ifndef VADA_CONTEXT_DATA_CONTEXT_H_
#define VADA_CONTEXT_DATA_CONTEXT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/catalog.h"
#include "kb/relation.h"

namespace vada {

/// A correspondence between a target-schema attribute and an attribute of
/// a data-context relation (e.g. Target.postcode ~ Address.postcode).
struct ContextCorrespondence {
  std::string target_attribute;
  std::string context_attribute;
};

/// One association of the target schema with a data-context data set
/// (paper §2.2: reference data, master data, or example data).
struct DataContextBinding {
  std::string context_relation;
  RelationRole kind = RelationRole::kReference;  // reference/master/example
  std::vector<ContextCorrespondence> correspondences;
};

/// The paper's data context: domain data the user associates with the
/// target schema to inform wrangling — complete value lists (reference),
/// entities of interest (master), or sample instances (example). CFD
/// learning, instance matching and accuracy estimation all key off it.
class DataContext {
 public:
  DataContext() = default;

  /// Registers a binding. `kind` must be kReference, kMaster or kExample.
  Status AddBinding(DataContextBinding binding);

  const std::vector<DataContextBinding>& bindings() const { return bindings_; }
  bool empty() const { return bindings_.empty(); }

  /// Bindings of a given kind.
  std::vector<const DataContextBinding*> BindingsOfKind(
      RelationRole kind) const;

  /// The context attribute corresponding to `target_attribute` in
  /// `context_relation`, if bound.
  std::optional<std::string> ContextAttributeFor(
      const std::string& context_relation,
      const std::string& target_attribute) const;

  /// All bindings that cover `target_attribute` (any kind).
  std::vector<const DataContextBinding*> BindingsCovering(
      const std::string& target_attribute) const;

  /// Renders as KB relation data_context(context_relation, kind,
  /// target_attribute, context_attribute), one row per correspondence.
  Relation ToRelation(const std::string& relation_name = "data_context") const;

 private:
  std::vector<DataContextBinding> bindings_;
};

}  // namespace vada

#endif  // VADA_CONTEXT_DATA_CONTEXT_H_
