#ifndef VADA_CONTEXT_USER_CONTEXT_H_
#define VADA_CONTEXT_USER_CONTEXT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/relation.h"

namespace vada {

/// A quality criterion over the wrangling result: a metric applied to a
/// subject, e.g. completeness of "crimerank" or consistency of the whole
/// "property" table (subject = relation or relation.attribute, following
/// Figure 2(d) of the paper).
struct Criterion {
  std::string metric;   ///< "completeness" | "accuracy" | "consistency" | ...
  std::string subject;  ///< e.g. "crimerank", "property.bedrooms", "property"

  /// Canonical id "metric(subject)".
  std::string Id() const { return metric + "(" + subject + ")"; }

  friend bool operator==(const Criterion& a, const Criterion& b) {
    return a.metric == b.metric && a.subject == b.subject;
  }
  friend bool operator<(const Criterion& a, const Criterion& b) {
    if (a.metric != b.metric) return a.metric < b.metric;
    return a.subject < b.subject;
  }
};

/// Saaty intensity of a pairwise statement. Mirrors the paper's phrasing:
/// "moderately" (3), "strongly" (5), "very strongly" (7), "extremely" (9).
enum class Importance {
  kEqual = 1,
  kModerate = 3,
  kStrong = 5,
  kVeryStrong = 7,
  kExtreme = 9,
};

/// Parses "moderately" / "strongly" / "very strongly" / "extremely" /
/// "equally" (with or without a "more important than" suffix).
Result<Importance> ParseImportance(const std::string& phrase);

const char* ImportanceName(Importance level);

/// "X <level> more important than Y".
struct PairwiseStatement {
  Criterion more_important;
  Criterion less_important;
  Importance level = Importance::kEqual;
};

/// Derived criterion weights, normalised to sum 1.
struct CriterionWeights {
  std::map<std::string, double> weight_of;  ///< keyed by Criterion::Id()
  double consistency_ratio = 0.0;

  /// Weight for `criterion`, or `fallback` when the criterion was never
  /// mentioned in the user context.
  double Get(const Criterion& criterion, double fallback = 0.0) const;
};

/// The paper's user context (§2.2): the user's priorities among result
/// features, expressed as pairwise comparisons and converted to weights
/// via AHP for use in multi-criteria mapping/source selection.
class UserContext {
 public:
  UserContext() = default;

  /// Declares a criterion; implicit via AddStatement too. Order of first
  /// mention fixes matrix order (deterministic output).
  void AddCriterion(const Criterion& criterion);

  /// Adds "more <level> important than less". Registers both criteria.
  void AddStatement(const Criterion& more, const Criterion& less,
                    Importance level);

  /// Convenience for the paper's textual form, e.g.
  ///   AddStatement("completeness", "crimerank",
  ///                "very strongly", "accuracy", "property.type")
  Status AddStatement(const std::string& metric_more,
                      const std::string& subject_more,
                      const std::string& level_phrase,
                      const std::string& metric_less,
                      const std::string& subject_less);

  const std::vector<Criterion>& criteria() const { return criteria_; }
  const std::vector<PairwiseStatement>& statements() const {
    return statements_;
  }
  bool empty() const { return criteria_.empty(); }

  /// Builds the reciprocal comparison matrix (unstated pairs default to
  /// equal importance) and derives AHP weights.
  Result<CriterionWeights> DeriveWeights() const;

  /// Renders the user context as a KB relation
  /// user_context(metric_more, subject_more, level, metric_less,
  /// subject_less) so transducer dependencies can quantify over it.
  Relation ToRelation(const std::string& relation_name = "user_context") const;

 private:
  int IndexOf(const Criterion& criterion);  // registers if new

  std::vector<Criterion> criteria_;
  std::vector<PairwiseStatement> statements_;
};

}  // namespace vada

#endif  // VADA_CONTEXT_USER_CONTEXT_H_
