#ifndef VADA_CONTEXT_AHP_H_
#define VADA_CONTEXT_AHP_H_

#include <vector>

#include "common/status.h"

namespace vada {

/// Output of an Analytic Hierarchy Process weight derivation.
struct AhpResult {
  /// Normalised priority weights (sum to 1), one per criterion.
  std::vector<double> weights;
  /// Principal eigenvalue of the comparison matrix.
  double lambda_max = 0.0;
  /// Consistency index (lambda_max - n) / (n - 1).
  double consistency_index = 0.0;
  /// Consistency ratio CI / RI(n); <= 0.1 is conventionally acceptable.
  /// 0 when n <= 2 (always consistent).
  double consistency_ratio = 0.0;
};

/// Derives priority weights from a positive reciprocal pairwise-comparison
/// matrix (Saaty's AHP), via power iteration for the principal eigenvector.
///
/// The paper's user context (§2.2) is exactly such a set of pairwise
/// statements ("completeness crimerank very strongly more important than
/// accuracy property.type"); this function turns them into the weights
/// that drive multi-dimensional mapping selection.
///
/// Requirements: square, n >= 1, all entries > 0. Reciprocity is not
/// enforced bit-for-bit but deviations degrade the consistency ratio.
Result<AhpResult> ComputeAhp(const std::vector<std::vector<double>>& matrix);

/// Saaty random consistency index for matrices of size n (0 for n <= 2).
double SaatyRandomIndex(size_t n);

}  // namespace vada

#endif  // VADA_CONTEXT_AHP_H_
