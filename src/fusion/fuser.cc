#include "fusion/fuser.h"

namespace vada {

Fuser::Fuser(FusionOptions options) : options_(std::move(options)) {}

Result<Relation> Fuser::Fuse(const Relation& rel,
                             const DuplicateClusters& clusters,
                             const std::string& result_name,
                             FusionStats* stats) const {
  if (clusters.cluster_of.size() != rel.size()) {
    return Status::InvalidArgument(
        "cluster assignment size does not match relation size");
  }
  if (!options_.row_weights.empty() &&
      options_.row_weights.size() != rel.size()) {
    return Status::InvalidArgument(
        "row_weights size does not match relation size");
  }

  FusionStats local;
  FusionStats* st = (stats != nullptr) ? stats : &local;
  st->input_rows = rel.size();

  std::vector<std::vector<size_t>> members(clusters.num_clusters);
  for (size_t r = 0; r < rel.size(); ++r) {
    members[clusters.cluster_of[r]].push_back(r);
  }

  Relation out(Schema(result_name, rel.schema().attributes()));
  const size_t arity = rel.schema().arity();
  for (const std::vector<size_t>& cluster : members) {
    if (cluster.empty()) continue;
    std::vector<Value> fused(arity);
    for (size_t col = 0; col < arity; ++col) {
      // Weighted vote among non-null values.
      std::map<Value, double> votes;
      size_t non_null_members = 0;
      for (size_t r : cluster) {
        const Value& v = rel.rows()[r].at(col);
        if (v.is_null()) continue;
        ++non_null_members;
        double w =
            options_.row_weights.empty() ? 1.0 : options_.row_weights[r];
        votes[v] += w;
      }
      if (votes.empty()) {
        fused[col] = Value::Null();
        continue;
      }
      const Value* best = nullptr;
      double best_votes = -1.0;
      for (const auto& [v, w] : votes) {
        if (w > best_votes) {
          best_votes = w;
          best = &v;
        }
      }
      fused[col] = *best;
      if (votes.size() > 1) ++st->conflicts_resolved;
      if (non_null_members < cluster.size() && cluster.size() > 1) {
        ++st->nulls_filled;
      }
    }
    VADA_RETURN_IF_ERROR(out.InsertUnchecked(Tuple(std::move(fused))));
  }
  st->output_rows = out.size();
  return out;
}

}  // namespace vada
