#ifndef VADA_FUSION_DEDUP_H_
#define VADA_FUSION_DEDUP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kb/relation.h"

namespace vada {

/// Options for duplicate detection.
struct DedupOptions {
  /// Attributes used to block candidate pairs (rows compared only within
  /// equal blocking-key groups). Empty = single block (quadratic!).
  std::vector<std::string> blocking_attributes;
  /// Attributes compared for similarity; empty = every attribute.
  std::vector<std::string> compare_attributes;
  /// Record-pair similarity threshold for declaring a duplicate.
  double threshold = 0.8;
  /// Minimum number of attributes where BOTH records are non-null for a
  /// pair to be comparable at all; sparser pairs never match (a row
  /// carrying only a postcode must not absorb its whole block).
  size_t min_shared_fields = 3;
  /// Hard cap on pairs examined per block (defensive on skewed blocks).
  size_t max_pairs_per_block = 100000;
};

/// A detected duplicate pair (row indexes into the relation).
struct DuplicatePair {
  size_t row_a = 0;
  size_t row_b = 0;
  double similarity = 0.0;
};

/// Clusters of mutually-duplicate rows (transitive closure of pairs).
struct DuplicateClusters {
  /// cluster id per row (clusters numbered densely from 0).
  std::vector<size_t> cluster_of;
  size_t num_clusters = 0;
};

/// The paper's duplicate-detection functionality ("a data fusion
/// transducer may start to evaluate when duplicates have been detected",
/// §2): blocking + field-wise record similarity + union-find clustering.
class DuplicateDetector {
 public:
  explicit DuplicateDetector(DedupOptions options = DedupOptions());

  /// Record-pair similarity: mean of per-attribute value similarities
  /// (exact match 1, numeric closeness, string similarity; null-null
  /// pairs are skipped, null-vs-value scores 0).
  double RecordSimilarity(const Relation& rel, size_t row_a, size_t row_b)
      const;

  /// All pairs above the threshold.
  Result<std::vector<DuplicatePair>> FindDuplicates(const Relation& rel) const;

  /// Union-find clustering of duplicate pairs.
  Result<DuplicateClusters> Cluster(const Relation& rel) const;

 private:
  DedupOptions options_;
};

}  // namespace vada

#endif  // VADA_FUSION_DEDUP_H_
