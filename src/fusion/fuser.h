#ifndef VADA_FUSION_FUSER_H_
#define VADA_FUSION_FUSER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "fusion/dedup.h"
#include "kb/relation.h"

namespace vada {

/// Options for conflict-resolving fusion.
struct FusionOptions {
  /// Per-row weights (e.g. source quality); empty = all rows weight 1.
  /// Indexed parallel to the relation's rows.
  std::vector<double> row_weights;
};

/// Statistics of one fusion run.
struct FusionStats {
  size_t input_rows = 0;
  size_t output_rows = 0;
  size_t conflicts_resolved = 0;  ///< cells where cluster members disagreed
  size_t nulls_filled = 0;        ///< cells null in some member, filled by another
};

/// The paper's Data Fusion transducer ("a data fusion transducer may
/// start to evaluate when duplicates have been detected"): collapses each
/// duplicate cluster to one tuple, resolving per-attribute conflicts by
/// weighted majority vote among non-null values.
class Fuser {
 public:
  explicit Fuser(FusionOptions options = FusionOptions());

  /// Fuses `rel` given its duplicate clustering. The output relation has
  /// the same schema (renamed to `result_name`).
  Result<Relation> Fuse(const Relation& rel, const DuplicateClusters& clusters,
                        const std::string& result_name,
                        FusionStats* stats = nullptr) const;

 private:
  FusionOptions options_;
};

}  // namespace vada

#endif  // VADA_FUSION_FUSER_H_
