#include "fusion/dedup.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/similarity.h"
#include "common/strings.h"

namespace vada {

namespace {

double ValueSimilarity(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return 0.0;
  if (a == b) return 1.0;
  std::optional<double> da = a.AsDouble();
  std::optional<double> db = b.AsDouble();
  if (da.has_value() && db.has_value()) {
    // Numbers only count as similar within a tight relative band (5%):
    // two different properties' prices must not read as near-duplicates.
    double scale = std::max({std::fabs(*da), std::fabs(*db), 1e-9});
    double banded = std::fabs(*da - *db) / (0.05 * scale);
    return banded >= 1.0 ? 0.0 : 1.0 - banded;
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    const std::string& sa = a.string_value();
    const std::string& sb = b.string_value();
    // Long strings (descriptions) share templates; character similarity
    // over-scores them, so compare word sets instead.
    if (sa.size() >= 16 || sb.size() >= 16) {
      std::vector<std::string> ta;
      std::vector<std::string> tb;
      for (const std::string& w : Split(sa, ' ')) {
        if (!w.empty()) ta.push_back(w);
      }
      for (const std::string& w : Split(sb, ' ')) {
        if (!w.empty()) tb.push_back(w);
      }
      return TokenJaccard(ta, tb);
    }
    return JaroWinklerSimilarity(sa, sb);
  }
  return 0.0;
}

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

DuplicateDetector::DuplicateDetector(DedupOptions options)
    : options_(std::move(options)) {}

double DuplicateDetector::RecordSimilarity(const Relation& rel, size_t row_a,
                                           size_t row_b) const {
  const Tuple& a = rel.rows()[row_a];
  const Tuple& b = rel.rows()[row_b];
  std::vector<size_t> indexes;
  if (options_.compare_attributes.empty()) {
    for (size_t i = 0; i < rel.schema().arity(); ++i) indexes.push_back(i);
  } else {
    for (const std::string& attr : options_.compare_attributes) {
      std::optional<size_t> i = rel.schema().AttributeIndex(attr);
      if (i.has_value()) indexes.push_back(*i);
    }
  }
  if (indexes.empty()) return 0.0;
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i : indexes) {
    // A null on either side is absence of evidence, not disagreement —
    // a portal that omitted the crime rank must not veto a duplicate.
    if (a.at(i).is_null() || b.at(i).is_null()) continue;
    sum += ValueSimilarity(a.at(i), b.at(i));
    ++counted;
  }
  size_t required = std::min(options_.min_shared_fields, indexes.size());
  if (counted < required) return 0.0;
  if (counted == 0) return 0.0;
  return sum / static_cast<double>(counted);
}

Result<std::vector<DuplicatePair>> DuplicateDetector::FindDuplicates(
    const Relation& rel) const {
  // Build blocks.
  std::map<std::string, std::vector<size_t>> blocks;
  if (options_.blocking_attributes.empty()) {
    std::vector<size_t>& all = blocks[""];
    for (size_t r = 0; r < rel.size(); ++r) all.push_back(r);
  } else {
    std::vector<size_t> key_idx;
    for (const std::string& attr : options_.blocking_attributes) {
      std::optional<size_t> i = rel.schema().AttributeIndex(attr);
      if (!i.has_value()) {
        return Status::NotFound("blocking attribute " + attr + " not in " +
                                rel.schema().ToString());
      }
      key_idx.push_back(*i);
    }
    for (size_t r = 0; r < rel.size(); ++r) {
      std::string key;
      bool has_null = false;
      for (size_t i : key_idx) {
        const Value& v = rel.rows()[r].at(i);
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key += v.ToString();
        key += '\x1f';
      }
      // Rows with null blocking keys cannot be safely blocked; they are
      // left unpaired (a conservative choice documented here).
      if (!has_null) blocks[key].push_back(r);
    }
  }

  std::vector<DuplicatePair> out;
  for (const auto& [key, rows] : blocks) {
    size_t pairs = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = i + 1; j < rows.size(); ++j) {
        if (++pairs > options_.max_pairs_per_block) break;
        double sim = RecordSimilarity(rel, rows[i], rows[j]);
        if (sim >= options_.threshold) {
          out.push_back(DuplicatePair{rows[i], rows[j], sim});
        }
      }
      if (pairs > options_.max_pairs_per_block) break;
    }
  }
  return out;
}

Result<DuplicateClusters> DuplicateDetector::Cluster(
    const Relation& rel) const {
  Result<std::vector<DuplicatePair>> pairs = FindDuplicates(rel);
  if (!pairs.ok()) return pairs.status();
  UnionFind uf(rel.size());
  for (const DuplicatePair& p : pairs.value()) {
    uf.Union(p.row_a, p.row_b);
  }
  DuplicateClusters out;
  out.cluster_of.resize(rel.size());
  std::map<size_t, size_t> dense;
  for (size_t r = 0; r < rel.size(); ++r) {
    size_t root = uf.Find(r);
    auto [it, added] = dense.emplace(root, dense.size());
    out.cluster_of[r] = it->second;
  }
  out.num_clusters = dense.size();
  return out;
}

}  // namespace vada
