#include "fusion/dedup.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/similarity.h"
#include "common/strings.h"

namespace vada {

namespace {

double ValueSimilarity(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return 0.0;
  if (a == b) return 1.0;
  std::optional<double> da = a.AsDouble();
  std::optional<double> db = b.AsDouble();
  if (da.has_value() && db.has_value()) {
    // Numbers only count as similar within a tight relative band (5%):
    // two different properties' prices must not read as near-duplicates.
    double scale = std::max({std::fabs(*da), std::fabs(*db), 1e-9});
    double banded = std::fabs(*da - *db) / (0.05 * scale);
    return banded >= 1.0 ? 0.0 : 1.0 - banded;
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    const std::string& sa = a.string_value();
    const std::string& sb = b.string_value();
    // Long strings (descriptions) share templates; character similarity
    // over-scores them, so compare word sets instead.
    if (sa.size() >= 16 || sb.size() >= 16) {
      std::vector<std::string> ta;
      std::vector<std::string> tb;
      for (const std::string& w : Split(sa, ' ')) {
        if (!w.empty()) ta.push_back(w);
      }
      for (const std::string& w : Split(sb, ' ')) {
        if (!w.empty()) tb.push_back(w);
      }
      return TokenJaccard(ta, tb);
    }
    return JaroWinklerSimilarity(sa, sb);
  }
  return 0.0;
}

/// Per-pair similarity over precomputed row features. FindDuplicates
/// compares every row of a block against every other, so anything
/// derivable from one row alone — numeric coercion, long-string token
/// sets — is computed once per row here instead of once per pair
/// (tokenizing per pair dominated the fusion transducer's profile).
/// Scores are exactly RecordSimilarity's: same branches, same math.
class PairScorer {
 public:
  PairScorer(const Relation& rel, const std::vector<size_t>& indexes,
             size_t required)
      : indexes_(indexes), required_(required) {
    features_.resize(rel.size() * indexes.size());
    for (size_t r = 0; r < rel.size(); ++r) {
      const Tuple& row = rel.rows()[r];
      for (size_t k = 0; k < indexes.size(); ++k) {
        CellFeature& f = features_[r * indexes.size() + k];
        const Value& v = row.at(indexes[k]);
        f.value = &v;
        f.is_null = v.is_null();
        if (f.is_null) continue;
        f.num = v.AsDouble();
        if (v.type() == ValueType::kString) {
          f.str = &v.string_value();
          if (f.str->size() >= 16) {
            f.long_string = true;
            // Sorted unique tokens: TokenJaccard's set semantics,
            // realized as a linear merge at compare time.
            for (const std::string& w : Split(*f.str, ' ')) {
              if (!w.empty()) f.tokens.push_back(w);
            }
            std::sort(f.tokens.begin(), f.tokens.end());
            f.tokens.erase(std::unique(f.tokens.begin(), f.tokens.end()),
                           f.tokens.end());
          }
        }
      }
    }
  }

  double Score(size_t row_a, size_t row_b) const {
    const CellFeature* fa = &features_[row_a * indexes_.size()];
    const CellFeature* fb = &features_[row_b * indexes_.size()];
    double sum = 0.0;
    size_t counted = 0;
    for (size_t k = 0; k < indexes_.size(); ++k) {
      const CellFeature& a = fa[k];
      const CellFeature& b = fb[k];
      if (a.is_null || b.is_null) continue;
      sum += CellSimilarity(a, b);
      ++counted;
    }
    if (counted < required_ || counted == 0) return 0.0;
    return sum / static_cast<double>(counted);
  }

 private:
  struct CellFeature {
    const Value* value = nullptr;
    const std::string* str = nullptr;
    bool is_null = true;
    bool long_string = false;
    std::optional<double> num;
    std::vector<std::string> tokens;  // sorted unique (long strings)
  };

  static double CellSimilarity(const CellFeature& a, const CellFeature& b) {
    if (*a.value == *b.value) return 1.0;
    if (a.num.has_value() && b.num.has_value()) {
      double scale = std::max({std::fabs(*a.num), std::fabs(*b.num), 1e-9});
      double banded = std::fabs(*a.num - *b.num) / (0.05 * scale);
      return banded >= 1.0 ? 0.0 : 1.0 - banded;
    }
    if (a.str != nullptr && b.str != nullptr) {
      if (a.long_string || b.long_string) {
        return SortedTokenJaccard(a.long_string ? a.tokens : Tokenize(*a.str),
                                  b.long_string ? b.tokens : Tokenize(*b.str));
      }
      return JaroWinklerSimilarity(*a.str, *b.str);
    }
    return 0.0;
  }

  static std::vector<std::string> Tokenize(const std::string& s) {
    std::vector<std::string> tokens;
    for (const std::string& w : Split(s, ' ')) {
      if (!w.empty()) tokens.push_back(w);
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    return tokens;
  }

  /// TokenJaccard over already-sorted-unique token vectors (linear merge
  /// instead of two set constructions per pair).
  static double SortedTokenJaccard(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
    if (a.empty() && b.empty()) return 1.0;
    size_t inter = 0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
      int cmp = a[i].compare(b[j]);
      if (cmp == 0) {
        ++inter;
        ++i;
        ++j;
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
    size_t uni = a.size() + b.size() - inter;
    if (uni == 0) return 1.0;
    return static_cast<double>(inter) / static_cast<double>(uni);
  }

  const std::vector<size_t>& indexes_;
  size_t required_;
  std::vector<CellFeature> features_;
};

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

DuplicateDetector::DuplicateDetector(DedupOptions options)
    : options_(std::move(options)) {}

double DuplicateDetector::RecordSimilarity(const Relation& rel, size_t row_a,
                                           size_t row_b) const {
  const Tuple& a = rel.rows()[row_a];
  const Tuple& b = rel.rows()[row_b];
  std::vector<size_t> indexes;
  if (options_.compare_attributes.empty()) {
    for (size_t i = 0; i < rel.schema().arity(); ++i) indexes.push_back(i);
  } else {
    for (const std::string& attr : options_.compare_attributes) {
      std::optional<size_t> i = rel.schema().AttributeIndex(attr);
      if (i.has_value()) indexes.push_back(*i);
    }
  }
  if (indexes.empty()) return 0.0;
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i : indexes) {
    // A null on either side is absence of evidence, not disagreement —
    // a portal that omitted the crime rank must not veto a duplicate.
    if (a.at(i).is_null() || b.at(i).is_null()) continue;
    sum += ValueSimilarity(a.at(i), b.at(i));
    ++counted;
  }
  size_t required = std::min(options_.min_shared_fields, indexes.size());
  if (counted < required) return 0.0;
  if (counted == 0) return 0.0;
  return sum / static_cast<double>(counted);
}

Result<std::vector<DuplicatePair>> DuplicateDetector::FindDuplicates(
    const Relation& rel) const {
  // Build blocks.
  std::map<std::string, std::vector<size_t>> blocks;
  if (options_.blocking_attributes.empty()) {
    std::vector<size_t>& all = blocks[""];
    for (size_t r = 0; r < rel.size(); ++r) all.push_back(r);
  } else {
    std::vector<size_t> key_idx;
    for (const std::string& attr : options_.blocking_attributes) {
      std::optional<size_t> i = rel.schema().AttributeIndex(attr);
      if (!i.has_value()) {
        return Status::NotFound("blocking attribute " + attr + " not in " +
                                rel.schema().ToString());
      }
      key_idx.push_back(*i);
    }
    for (size_t r = 0; r < rel.size(); ++r) {
      std::string key;
      bool has_null = false;
      for (size_t i : key_idx) {
        const Value& v = rel.rows()[r].at(i);
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key += v.ToString();
        key += '\x1f';
      }
      // Rows with null blocking keys cannot be safely blocked; they are
      // left unpaired (a conservative choice documented here).
      if (!has_null) blocks[key].push_back(r);
    }
  }

  // Resolve the compared attribute set once (RecordSimilarity re-derives
  // it per pair; block comparison is quadratic, so hoist everything).
  std::vector<size_t> indexes;
  if (options_.compare_attributes.empty()) {
    for (size_t i = 0; i < rel.schema().arity(); ++i) indexes.push_back(i);
  } else {
    for (const std::string& attr : options_.compare_attributes) {
      std::optional<size_t> i = rel.schema().AttributeIndex(attr);
      if (i.has_value()) indexes.push_back(*i);
    }
  }
  std::vector<DuplicatePair> out;
  if (indexes.empty()) return out;
  PairScorer scorer(rel, indexes,
                    std::min(options_.min_shared_fields, indexes.size()));
  for (const auto& [key, rows] : blocks) {
    size_t pairs = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = i + 1; j < rows.size(); ++j) {
        if (++pairs > options_.max_pairs_per_block) break;
        double sim = scorer.Score(rows[i], rows[j]);
        if (sim >= options_.threshold) {
          out.push_back(DuplicatePair{rows[i], rows[j], sim});
        }
      }
      if (pairs > options_.max_pairs_per_block) break;
    }
  }
  return out;
}

Result<DuplicateClusters> DuplicateDetector::Cluster(
    const Relation& rel) const {
  Result<std::vector<DuplicatePair>> pairs = FindDuplicates(rel);
  if (!pairs.ok()) return pairs.status();
  UnionFind uf(rel.size());
  for (const DuplicatePair& p : pairs.value()) {
    uf.Union(p.row_a, p.row_b);
  }
  DuplicateClusters out;
  out.cluster_of.resize(rel.size());
  std::map<size_t, size_t> dense;
  for (size_t r = 0; r < rel.size(); ++r) {
    size_t root = uf.Find(r);
    auto [it, added] = dense.emplace(root, dense.size());
    out.cluster_of[r] = it->second;
  }
  out.num_clusters = dense.size();
  return out;
}

}  // namespace vada
