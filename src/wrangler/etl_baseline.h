#ifndef VADA_WRANGLER_ETL_BASELINE_H_
#define VADA_WRANGLER_ETL_BASELINE_H_

#include <vector>

#include "common/status.h"
#include "kb/relation.h"
#include "kb/schema.h"
#include "wrangler/config.h"

namespace vada {

/// Counters describing an ETL run.
struct EtlReport {
  size_t component_runs = 0;
  size_t mappings_generated = 0;
  size_t result_rows = 0;
};

/// The paper's implicit baseline (§1: systems "with comparable scope to
/// typical ETL systems [12]"): a statically ordered, pre-configured
/// pipeline of the same components — match, generate, execute, union,
/// fuse — with no dynamic orchestration, no data/user context, no
/// feedback, no repair and no selection. Bench E8 contrasts it with the
/// dynamic network transducer.
class EtlPipeline {
 public:
  explicit EtlPipeline(WranglerConfig config = WranglerConfig());

  /// Runs the fixed pipeline once.
  Result<Relation> Run(const Schema& target,
                       const std::vector<Relation>& sources,
                       EtlReport* report = nullptr) const;

 private:
  WranglerConfig config_;
};

}  // namespace vada

#endif  // VADA_WRANGLER_ETL_BASELINE_H_
