#include "wrangler/session.h"

#include "common/logging.h"
#include "datalog/analysis/analyzer.h"
#include "datalog/kb_adapter.h"
#include "datalog/parser.h"
#include "datalog/symbol_table.h"
#include "mapping/executor.h"
#include "mapping/mapping.h"
#include "obs/process_stats.h"
#include "transducer/trace_export.h"

namespace vada {

namespace {

/// Applies one analysis report under the configured enforcement level:
/// warnings are logged either way; errors (and, under kStrict, warnings)
/// fail the registration.
Status EnforceAnalysis(const datalog::analysis::AnalysisReport& report,
                       AnalysisEnforcement enforcement,
                       const std::string& context) {
  using datalog::analysis::Severity;
  for (const datalog::analysis::Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kWarning) {
      VADA_LOG(kWarning, "wrangler") << context << ": " << d.ToString();
    }
  }
  if (report.error_count() > 0) return report.ToStatus(context);
  if (enforcement == AnalysisEnforcement::kStrict) {
    for (const datalog::analysis::Diagnostic& d : report.diagnostics) {
      if (d.severity == Severity::kWarning) {
        return Status::InvalidArgument(context +
                                       " (strict analysis): " + d.ToString());
      }
    }
  }
  return Status::OK();
}

}  // namespace

WranglingSession::WranglingSession(WranglerConfig config) {
  state_ = std::make_unique<WranglingState>();
  state_->config = std::move(config);
  obs_ = std::make_unique<obs::ObsContext>(state_->config.obs);
  if (obs_->sessions() != nullptr) {
    session_handle_ =
        obs_->sessions()->Register(state_->config.session_name);
  }
  if (state_->config.durability.enabled) {
    // Recover committed durable state into the (still empty) KB before
    // any input is registered; failures are surfaced by Run(), since
    // constructors cannot return a Status.
    Result<std::unique_ptr<DurabilityManager>> opened =
        DurabilityManager::Open(state_->config.durability, &kb_,
                                obs_->metrics());
    if (opened.ok()) {
      durability_ = std::move(opened).value();
      if (durability_->recovery().recovered) {
        VADA_LOG(kInfo, "wrangler")
            << "durability: " << durability_->recovery().ToString();
      }
    } else {
      durability_open_status_ = opened.status();
      VADA_LOG(kWarning, "wrangler")
          << "durability open failed: " << opened.status().ToString();
    }
  }
  if (state_->config.incremental.enabled) {
    // Attached after durability recovery: the recovered state is the
    // base the first mapping initialisation reads, so its replayed
    // mutations need no delta records.
    delta_log_ = std::make_unique<DeltaLog>(
        state_->config.incremental.max_log_records);
    kb_.AttachDeltaLog(delta_log_.get());
    state_->delta_log = delta_log_.get();
  }
  registry_.SetDecorator(state_->config.transducer_decorator);
  const ParallelismOptions& par = state_->config.parallelism;
  if (par.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(par.threads - 1);
  }
  if (par.snapshot_cache) {
    snapshot_cache_ = std::make_unique<datalog::SnapshotCache>();
    if (obs_->metrics() != nullptr) {
      snapshot_cache_->SetCounters(
          obs_->metrics()->GetCounter(
              "vada_snapshot_cache_hits_total",
              "Dependency-scan relation loads served from the snapshot "
              "cache without copying"),
          obs_->metrics()->GetCounter(
              "vada_snapshot_cache_misses_total",
              "Dependency-scan relation loads that (re)built a snapshot"));
    }
  }
  OrchestratorOptions orch_options;
  orch_options.obs = obs_.get();
  orch_options.failure_policy = state_->config.fault_tolerance;
  orch_options.pool = pool_.get();
  orch_options.snapshot_cache = snapshot_cache_.get();
  orch_options.planner = state_->config.planner;
  orchestrator_ = std::make_unique<NetworkTransducer>(
      &registry_,
      std::make_unique<ActivityPriorityPolicy>(
          ActivityPriorityPolicy::DefaultActivityOrder()),
      orch_options);
}

Status WranglingSession::SetTargetSchema(const Schema& target) {
  VADA_RETURN_IF_ERROR(target.Validate());
  if (!state_->target_relation.empty()) {
    return Status::FailedPrecondition("target schema already set to " +
                                      state_->target_relation);
  }
  // EnsureRelation, not CreateRelation: with durability on, recovery may
  // have restored this relation (with rows) before the caller re-declares
  // the same target.
  VADA_RETURN_IF_ERROR(kb_.EnsureRelation(target));
  kb_.catalog().SetRole(target.relation_name(), RelationRole::kTarget);
  state_->target_relation = target.relation_name();
  if (!transducers_registered_) {
    VADA_RETURN_IF_ERROR(
        RegisterStandardTransducers(&registry_, state_.get()));
    // The standard suite goes through the same registration-time
    // analysis as user transducers; it is expected to pass kStrict.
    for (const std::unique_ptr<Transducer>& t : registry_.transducers()) {
      VADA_RETURN_IF_ERROR(ValidateTransducer(*t));
    }
    transducers_registered_ = true;
  }
  return Status::OK();
}

Status WranglingSession::AddSource(const Relation& data) {
  VADA_RETURN_IF_ERROR(kb_.InsertAll(data));
  kb_.catalog().SetRole(data.name(), RelationRole::kSource);
  return Status::OK();
}

Status WranglingSession::AddDataContext(
    const Relation& data, RelationRole kind,
    std::vector<ContextCorrespondence> correspondences) {
  DataContextBinding binding;
  binding.context_relation = data.name();
  binding.kind = kind;
  binding.correspondences = std::move(correspondences);
  VADA_RETURN_IF_ERROR(state_->data_context.AddBinding(binding));
  VADA_RETURN_IF_ERROR(kb_.InsertAll(data));
  kb_.catalog().SetRole(data.name(), kind);
  // Publish the bindings as the data_context control relation the
  // transducer dependencies quantify over.
  VADA_RETURN_IF_ERROR(
      kb_.ReplaceRelationIfChanged(state_->data_context.ToRelation()));
  return Status::OK();
}

Status WranglingSession::SetUserContext(const UserContext& user_context) {
  // Validate before accepting: weights must be derivable.
  if (!user_context.empty()) {
    Result<CriterionWeights> weights = user_context.DeriveWeights();
    if (!weights.ok()) return weights.status();
  }
  state_->user_context = user_context;
  return kb_.ReplaceRelationIfChanged(state_->user_context.ToRelation());
}

Status WranglingSession::AddFeedback(const FeedbackItem& item) {
  state_->feedback.Add(item);
  return kb_.ReplaceRelationIfChanged(state_->feedback.ToRelation());
}

Status WranglingSession::AddTransducer(std::unique_ptr<Transducer> transducer) {
  if (transducer == nullptr) {
    return Status::InvalidArgument("transducer is null");
  }
  VADA_RETURN_IF_ERROR(ValidateTransducer(*transducer));
  return registry_.Add(std::move(transducer));
}

Status WranglingSession::ValidateTransducer(const Transducer& transducer) const {
  namespace an = datalog::analysis;
  const AnalysisEnforcement enforcement = state_->config.analysis;
  if (enforcement == AnalysisEnforcement::kOff) return Status::OK();
  // Open-world at registration time: most EDB predicates in transducer
  // Vadalog are produced later, by other transducers, so unknown
  // predicates cannot be diagnosed — but anything the catalog does know
  // (sys_* control relations, already-registered KB relations) is
  // checked for arity and constant types.
  an::PredicateCatalog catalog = an::PredicateCatalog::FromKnowledgeBase(kb_);

  an::AnalyzerOptions dep_options;
  dep_options.goal_predicate = "ready";
  dep_options.unknown_predicates = an::UnknownPredicatePolicy::kIgnore;
  VADA_RETURN_IF_ERROR(EnforceAnalysis(
      an::ProgramAnalyzer(dep_options)
          .AnalyzeSource(transducer.input_dependency(), &catalog),
      enforcement, "transducer " + transducer.name() + " input dependency"));

  if (const std::string* program = transducer.vadalog_program()) {
    an::AnalyzerOptions prog_options;
    prog_options.unknown_predicates = an::UnknownPredicatePolicy::kIgnore;
    VADA_RETURN_IF_ERROR(EnforceAnalysis(
        an::ProgramAnalyzer(prog_options).AnalyzeSource(*program, &catalog),
        enforcement, "transducer " + transducer.name() + " program"));
  }
  return Status::OK();
}

Status WranglingSession::Run(OrchestrationStats* stats) {
  VADA_RETURN_IF_ERROR(durability_open_status_);
  if (state_->target_relation.empty()) {
    return Status::FailedPrecondition(
        "no target schema: call SetTargetSchema first");
  }
  obs::MetricsRegistry* m = obs_->metrics();
  obs::Histogram* run_hist =
      m == nullptr ? nullptr
                   : m->GetHistogram(
                         "vada_session_run_seconds",
                         "WranglingSession::Run wall time",
                         obs::Histogram::DefaultLatencyBucketsSeconds());
  Status status;
  {
    obs::ScopedSpan run_span(obs_->spans(), run_hist, "session.run",
                             "session");
    status = orchestrator_->Run(&kb_, stats);
  }
  if (m != nullptr) {
    m->GetCounter("vada_session_runs", "WranglingSession::Run invocations")
        ->Increment();
    PublishKbGauges();
  }
  // A wrangle that succeeded in memory but whose WAL trail died is not a
  // durable success; report the sticky durability failure.
  if (status.ok() && durability_ != nullptr) status = durability_->status();
  return status;
}

Status WranglingSession::Checkpoint() {
  VADA_RETURN_IF_ERROR(durability_open_status_);
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "durability is disabled for this session");
  }
  return durability_->Checkpoint();
}

void WranglingSession::PublishKbGauges() const {
  obs::MetricsRegistry* m = obs_->metrics();
  if (m == nullptr) return;
  size_t kb_bytes = 0;
  for (const std::string& name : kb_.RelationNames()) {
    const Relation* rel = kb_.FindRelation(name);
    if (rel == nullptr) continue;
    m->GetGauge("vada_kb_relation_rows", "Current relation cardinality",
                {{"relation", name}})
        ->Set(static_cast<int64_t>(rel->size()));
    size_t bytes = rel->ApproxBytes();
    kb_bytes += bytes;
    m->GetGauge("vada_kb_relation_bytes",
                "Approximate resident bytes of one relation (rows, dedup "
                "set, bucket arrays)",
                {{"relation", name}})
        ->Set(static_cast<int64_t>(bytes));
  }
  m->GetGauge("vada_kb_relations", "Number of registered relations")
      ->Set(static_cast<int64_t>(kb_.RelationNames().size()));
  m->GetGauge("vada_kb_global_version",
              "KB global version (bumped on every mutation)")
      ->Set(static_cast<int64_t>(kb_.global_version()));
  m->GetGauge("vada_kb_facts_added", "Lifetime facts added to the KB")
      ->Set(static_cast<int64_t>(kb_.facts_added()));
  m->GetGauge("vada_kb_facts_removed", "Lifetime facts removed from the KB")
      ->Set(static_cast<int64_t>(kb_.facts_removed()));
  // Persistent composite join indexes live only on the snapshot-cache
  // databases (per-evaluation scratch copies die with their run), so
  // the cache is the whole story for index memory. 0 when the cache is
  // off or nothing has been indexed yet.
  size_t index_bytes =
      snapshot_cache_ == nullptr ? 0 : snapshot_cache_->ApproxIndexBytes();
  m->GetGauge("vada_index_bytes",
              "Approximate resident bytes of composite join indexes on "
              "cached relation snapshots")
      ->Set(static_cast<int64_t>(index_bytes));
  // The process-wide symbol table backing the columnar Datalog engine.
  // Monotone by design (ids are never recycled); these gauges are how
  // an operator watches dictionary growth across sessions.
  const datalog::SymbolTable& symtab = datalog::SymbolTable::Global();
  m->GetGauge("vada_symtab_symbols",
              "Distinct values interned in the process-wide symbol table")
      ->Set(static_cast<int64_t>(symtab.size()));
  m->GetGauge("vada_symtab_bytes",
              "Approximate resident bytes of the process-wide symbol "
              "table (id chunks, intern map, value payloads)")
      ->Set(static_cast<int64_t>(symtab.ApproxBytes()));
  if (delta_log_ != nullptr) {
    datalog::DeltaStats agg;
    uint64_t full_inits = 0;
    for (const auto& [id, mds] : state_->mapping_delta) {
      full_inits += mds.full_inits;
      if (mds.eval == nullptr) continue;
      const datalog::DeltaStats& s = mds.eval->lifetime_stats();
      agg.applies += s.applies;
      agg.full_fallbacks += s.full_fallbacks;
      agg.strata_skipped += s.strata_skipped;
      agg.strata_counting += s.strata_counting;
      agg.strata_monotone += s.strata_monotone;
      agg.strata_recomputed += s.strata_recomputed;
      agg.facts_inserted += s.facts_inserted;
      agg.facts_retracted += s.facts_retracted;
    }
    m->GetGauge("vada_delta_log_records",
                "KB change-log records currently retained for "
                "differential mapping maintenance")
        ->Set(static_cast<int64_t>(delta_log_->size()));
    m->GetGauge("vada_delta_applies",
                "Delta batches applied across maintained mappings")
        ->Set(static_cast<int64_t>(agg.applies));
    m->GetGauge("vada_delta_full_reinits",
                "Full mapping (re)initialisations, incl. each mapping's "
                "first")
        ->Set(static_cast<int64_t>(full_inits));
    m->GetGauge("vada_delta_full_fallbacks",
                "Delta batches that exceeded max_delta_fraction and fell "
                "back to one full re-run")
        ->Set(static_cast<int64_t>(agg.full_fallbacks));
    m->GetGauge("vada_delta_strata_skipped",
                "Strata skipped because no input of theirs changed")
        ->Set(static_cast<int64_t>(agg.strata_skipped));
    m->GetGauge("vada_delta_strata_counting",
                "Strata maintained by counting-based delta sweeps")
        ->Set(static_cast<int64_t>(agg.strata_counting));
    m->GetGauge("vada_delta_strata_monotone",
                "Strata continued by insert-only semi-naive increments")
        ->Set(static_cast<int64_t>(agg.strata_monotone));
    m->GetGauge("vada_delta_strata_recomputed",
                "Strata recomputed and diffed (negation/aggregates or "
                "recursive retracts)")
        ->Set(static_cast<int64_t>(agg.strata_recomputed));
    m->GetGauge("vada_delta_facts_inserted",
                "Facts inserted into maintained mapping fixpoints")
        ->Set(static_cast<int64_t>(agg.facts_inserted));
    m->GetGauge("vada_delta_facts_retracted",
                "Facts retracted from maintained mapping fixpoints")
        ->Set(static_cast<int64_t>(agg.facts_retracted));
  }
  if (durability_ != nullptr) durability_->PublishGauges();
  obs::PublishProcessMetrics(m);

  if (session_handle_.valid()) {
    obs::SessionSnapshot snap;
    snap.name = state_->config.session_name;
    snap.fields = {
        {"target", state_->target_relation},
        {"relations", std::to_string(kb_.RelationNames().size())},
        {"kb_bytes", std::to_string(kb_bytes)},
        {"index_bytes", std::to_string(index_bytes)},
        {"global_version", std::to_string(kb_.global_version())},
        {"facts_added", std::to_string(kb_.facts_added())},
    };
    session_handle_.Update(std::move(snap));
  }
}

Result<std::string> WranglingSession::ExplainIncremental() const {
  if (delta_log_ == nullptr) {
    return Status::FailedPrecondition(
        "incremental maintenance is disabled for this session");
  }
  std::string out;
  for (const auto& [id, mds] : state_->mapping_delta) {
    if (mds.eval == nullptr) continue;
    out += "mapping " + id + ": " + mds.eval->last_plan() + "\n";
  }
  if (out.empty()) out = "no maintained mappings yet\n";
  return out;
}

Result<datalog::PlanExplain> WranglingSession::ExplainProgram(
    const std::string& program_text, bool analyze) const {
  Result<datalog::Program> parsed = datalog::Parser::Parse(program_text);
  if (!parsed.ok()) return parsed.status();
  // Scratch copy of just the relations the program reads: ANALYZE runs
  // the program for real, and its derived facts must not leak into the
  // knowledge base.
  datalog::Database db;
  datalog::LoadReferencedRelations(parsed.value(), kb_, &db);
  datalog::EvalOptions options;
  options.planner = state_->config.planner;
  datalog::Evaluator eval(std::move(parsed).value(), options);
  VADA_RETURN_IF_ERROR(eval.Prepare());
  datalog::PlanExplain plan;
  VADA_RETURN_IF_ERROR(eval.Explain(&db, &plan, analyze));
  return plan;
}

SessionMetricsReport WranglingSession::MetricsReport() const {
  SessionMetricsReport report;
  obs::MetricsRegistry* m = obs_->metrics();
  if (m == nullptr) return report;
  PublishKbGauges();
  report.snapshot = m->Snapshot();
  report.prometheus = m->RenderPrometheus();
  report.chrome_trace =
      TraceExport::ToChromeTrace(orchestrator_->trace(), obs_->spans());
  return report;
}

const Relation* WranglingSession::result() const {
  return kb_.FindRelation(state_->config.result_relation);
}

Result<RelationQuality> WranglingSession::EstimateResultQuality() const {
  const Relation* res = result();
  if (res == nullptr) {
    return Status::FailedPrecondition("no result yet: call Run first");
  }
  QualityEstimator estimator;
  for (const DataContextBinding* binding :
       state_->data_context.BindingsOfKind(RelationRole::kReference)) {
    const Relation* ref = kb_.FindRelation(binding->context_relation);
    if (ref != nullptr && !ref->empty()) {
      estimator.SetReference(ref, binding->correspondences);
      break;
    }
  }
  if (!state_->cfds.empty()) {
    estimator.SetCfds(state_->cfds, state_->has_cfd_evidence
                                        ? &state_->cfd_evidence
                                        : nullptr);
  }
  return estimator.Estimate(*res);
}

std::vector<Mapping> WranglingSession::mappings() const {
  const Relation* rel = kb_.FindRelation("mapping");
  if (rel == nullptr) return {};
  Result<std::vector<Mapping>> parsed = MappingsFromRelation(*rel);
  return parsed.ok() ? std::move(parsed).value() : std::vector<Mapping>{};
}

Result<std::string> WranglingSession::ExplainResultRow(const Tuple& row) const {
  const Relation* target = kb_.FindRelation(state_->target_relation);
  if (target == nullptr) {
    return Status::FailedPrecondition("no target schema set");
  }
  std::string out = "result row " + row.ToString() + "\n";
  bool attributed = false;
  MappingExecutor executor(state_->config.planner);
  for (const Mapping& m : mappings()) {
    const Relation* raw = kb_.FindRelation(m.result_predicate);
    const Relation* repaired = kb_.FindRelation("repaired_" + m.id);
    bool in_raw = raw != nullptr && raw->Contains(row);
    bool in_repaired = repaired != nullptr && repaired->Contains(row);
    if (!in_raw && !in_repaired) continue;
    attributed = true;
    out += "  via mapping " + m.id;
    if (!in_raw) out += " (value produced by CFD repair)";
    out += ":\n    rule: " + m.rule_text + "\n";
    if (in_raw) {
      // Re-derive with provenance to expose the ground source tuples.
      datalog::Provenance provenance;
      Result<Relation> rerun =
          executor.Execute(m, target->schema(), kb_, &provenance);
      if (rerun.ok() && provenance.Has(m.result_predicate, row)) {
        const datalog::Derivation* d =
            provenance.Find(m.result_predicate, row);
        for (const auto& [pred, premise] : d->premises) {
          out += "    from " + pred + premise.ToString() + "\n";
        }
      }
    }
  }
  if (!attributed) {
    out += "  assembled by fusion: no single mapping emits this exact "
           "tuple (values merged across duplicate listings)\n";
  }
  return out;
}

std::vector<std::string> WranglingSession::selected_mappings() const {
  const Relation* rel = kb_.FindRelation("selected_mapping");
  std::vector<std::string> out;
  if (rel == nullptr) return out;
  for (const Tuple& row : rel->rows()) {
    out.push_back(row.at(0).ToString());
  }
  return out;
}

}  // namespace vada
