#ifndef VADA_WRANGLER_EVALUATION_H_
#define VADA_WRANGLER_EVALUATION_H_

#include <string>

#include "extract/real_estate.h"
#include "kb/relation.h"

namespace vada {

/// Truth-based evaluation of a wrangled real-estate result. The bench
/// harness uses this to quantify the pay-as-you-go claim: each added
/// input (data context, feedback, user context) should move these
/// numbers the way the paper narrates.
struct ScenarioEvaluation {
  size_t rows = 0;
  /// Non-null fraction of the crimerank column (drives §2.2's first
  /// user-context statement).
  double crimerank_completeness = 0.0;
  /// Fraction of non-null bedrooms that are plausible counts (<= 8);
  /// the complement measures the paper's area-extraction error.
  double bedrooms_plausible_rate = 1.0;
  /// Fraction of non-null postcodes that exist in the universe.
  double postcode_valid_rate = 1.0;
  /// Fraction of non-null streets that exist in the universe.
  double street_valid_rate = 1.0;
  /// Result rows relative to the universe size, capped at 1 — rewards
  /// results that actually cover the properties out there.
  double coverage = 0.0;
  /// Mean non-null fraction over the property attributes (type,
  /// description, street, postcode, bedrooms, price) — penalises sparse
  /// junk rows that the per-attribute validity rates (which skip nulls)
  /// would let through.
  double field_completeness = 0.0;
  /// Mean of the six component scores (single-number summary).
  double overall = 0.0;

  std::string ToString() const;
};

/// Evaluates `result` against the generator's ground truth. Attribute
/// names are the paper's target schema names ("crimerank", "bedrooms",
/// "postcode", "street"); absent attributes score 0 contribution.
ScenarioEvaluation EvaluateScenario(const Relation& result,
                                    const GroundTruth& truth);

}  // namespace vada

#endif  // VADA_WRANGLER_EVALUATION_H_
