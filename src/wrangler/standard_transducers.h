#ifndef VADA_WRANGLER_STANDARD_TRANSDUCERS_H_
#define VADA_WRANGLER_STANDARD_TRANSDUCERS_H_

#include "common/status.h"
#include "transducer/transducer.h"
#include "wrangler/config.h"

namespace vada {

/// Registers the standard VADA transducer suite against `state`:
///
/// | name                 | activity  | input dependency (summary)        |
/// |----------------------|-----------|-----------------------------------|
/// | schema_matching      | matching  | source + target schemas exist     |
/// | instance_matching    | matching  | source instances + data context   |
/// | match_combination    | matching  | per-matcher match facts exist     |
/// | mapping_generation   | mapping   | match facts exist                 |
/// | mapping_execution    | execution | mapping facts exist               |
/// | cfd_learning         | quality   | data-context instances exist      |
/// | mapping_repair       | repair    | CFDs + mapping results exist      |
/// | quality_metrics      | quality   | some mapping result non-empty     |
/// | mapping_selection    | selection | mappings + quality metrics exist  |
/// | fusion               | fusion    | selected mappings exist           |
/// | feedback_propagation | feedback  | feedback + mappings exist         |
///
/// This realises Table 1 of the paper (and extends it to the full
/// lifecycle); each row's dependency is a literal Vadalog program over
/// the knowledge base's control relations.
///
/// `state` must outlive the registry.
Status RegisterStandardTransducers(TransducerRegistry* registry,
                                   WranglingState* state);

}  // namespace vada

#endif  // VADA_WRANGLER_STANDARD_TRANSDUCERS_H_
