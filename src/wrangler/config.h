#ifndef VADA_WRANGLER_CONFIG_H_
#define VADA_WRANGLER_CONFIG_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "context/data_context.h"
#include "context/user_context.h"
#include "datalog/planner.h"
#include "datalog/snapshot_cache.h"
#include "feedback/feedback.h"
#include "fusion/dedup.h"
#include "feedback/propagation.h"
#include "kb/delta_log.h"
#include "kb/durability.h"
#include "mapping/executor.h"
#include "mapping/generator.h"
#include "mapping/selector.h"
#include "match/combiner.h"
#include "match/instance_matcher.h"
#include "match/schema_matcher.h"
#include "obs/obs.h"
#include "quality/cfd.h"
#include "transducer/failure_policy.h"
#include "transducer/transducer.h"

namespace vada {

/// Options of the source-selection transducer (paper §2.3: "a source
/// selection or a mapping selection transducer ... selects sources or
/// mappings, taking into account the user context").
struct SourceSelectorOptions {
  /// Sources whose trust score falls below this are excluded from
  /// mapping generation entirely.
  double min_trust = 0.25;
  /// Master switch; with false, trust scores are still computed (they
  /// weight fusion votes) but nothing is excluded.
  bool exclude_below_min = true;
};

/// Parallel & incremental evaluation knobs (DESIGN.md §5e). The
/// defaults — one thread, no cache — reproduce the fully sequential
/// engine exactly; the session only constructs a pool/cache when asked.
struct ParallelismOptions {
  /// Worker threads for eligibility scans and per-stratum rule
  /// evaluation. 1 (or 0) means no pool is created and everything runs
  /// inline on the calling thread, bit-identical to earlier releases.
  /// Results are deterministic at every setting — parallel evaluation
  /// merges in fixed task order — so raising this never changes output,
  /// only wall time.
  size_t threads = 1;
  /// Version-keyed snapshot cache for dependency-scan relation loads
  /// (see datalog/snapshot_cache.h): an eligibility scan re-copies only
  /// relations whose version moved since the previous scan. Independent
  /// of `threads`; the biggest single win for scans over large KBs.
  bool snapshot_cache = false;
  /// Minimum outer-candidate count before one rule evaluation is split
  /// into parallel chunks (forwarded to EvalOptions).
  size_t parallel_chunk_threshold = 1024;
};

/// Delta-driven differential maintenance of mapping execution — the
/// paper's "pay-as-you-go" made incremental (DESIGN.md §5k). With
/// `enabled`, the session attaches a DeltaLog to the knowledge base and
/// mapping execution routes feedback/context/source row changes through
/// a per-mapping DifferentialEvaluator, touching only affected
/// derivations; results are row-identical to a full re-evaluation at
/// every setting. Off by default — the execution path is then exactly
/// the full-re-run one.
struct IncrementalOptions {
  bool enabled = false;
  /// A delta batch whose effective base-fact flips exceed this fraction
  /// of the evaluator's base facts falls back to one full re-run (<= 0
  /// forces the full path always; see DifferentialOptions).
  double max_delta_fraction = 0.25;
  /// DeltaLog capacity; the oldest records are evicted past it and the
  /// affected mappings fall back to a full re-initialisation.
  size_t max_log_records = DeltaLog::kDefaultMaxRecords;
};

/// How strictly the session enforces static analysis of transducer
/// Vadalog (input dependencies and VadalogTransducer programs) at
/// registration time.
enum class AnalysisEnforcement {
  kOff = 0,         ///< skip analysis entirely
  kErrorsOnly = 1,  ///< errors fail registration; warnings are logged
  kStrict = 2,      ///< warnings fail registration too
};

/// Tuning knobs of the standard transducer suite. Every component's
/// options are surfaced so deployments (and ablation benches) can adjust
/// behaviour without new transducers.
struct WranglerConfig {
  SchemaMatcherOptions schema_matcher;
  InstanceMatcherOptions instance_matcher;
  CombinerOptions combiner;
  MappingGeneratorOptions generator;
  CfdLearnerOptions cfd_learner;
  SelectorOptions selector;
  SourceSelectorOptions source_selector;
  DedupOptions dedup;  ///< blocking attribute auto-chosen when empty
  PropagatorOptions propagator;
  /// Observability: metrics, spans and exports (see WranglingSession::
  /// MetricsReport). `obs.enabled = false` strips all instrumentation
  /// down to pointer checks on the hot paths.
  obs::ObsOptions obs;
  /// Registration-time static analysis of transducer Vadalog (safety,
  /// stratification, wardedness, catalog, lint). With the default,
  /// analysis errors (unsafe rules, arity mismatches, missing `ready`
  /// goal) reject the transducer and warnings are logged.
  AnalysisEnforcement analysis = AnalysisEnforcement::kErrorsOnly;
  /// Fault tolerance of the orchestration loop: write-guard rollback,
  /// retry with exponential backoff, quarantine (circuit breaker),
  /// execution budgets and failure facts. Defaults degrade gracefully;
  /// set `fault_tolerance.enabled = false` for the bare fail-fast loop
  /// or `on_failure_exhausted = FailureAction::kAbort` to fail fast
  /// *with* rollback and retries. See failure_policy.h and DESIGN.md §5d.
  FailurePolicy fault_tolerance;
  /// Parallel & incremental evaluation: thread count for scans and rule
  /// evaluation, and the version-keyed snapshot cache. Defaults are the
  /// sequential escape hatch (threads = 1, cache off). See DESIGN.md §5e
  /// and README "Performance & tuning".
  ParallelismOptions parallelism;
  /// Join planning for every Datalog evaluation the session runs —
  /// mapping execution, dependency scans and orchestration queries:
  /// composite hash-index probing and cost-based literal reordering
  /// (DESIGN.md §5f). Defaults on; `{.indexes = false, .reorder =
  /// false}` is the full-scan reference oracle. The derived facts are
  /// identical at every setting of `indexes`/`reorder`. `optimize`
  /// additionally runs the goal-directed dataflow rewrites (DESIGN.md
  /// §5h) on the session's orchestration queries — goal-visible results
  /// are unchanged, but facts of predicates a query does not need may
  /// no longer be derived into its scratch database. See README
  /// "Performance & tuning".
  datalog::PlannerOptions planner;
  /// Delta-driven differential maintenance of mapping execution
  /// (DESIGN.md §5k): with `enabled`, only the derivations affected by
  /// what actually changed since the previous run are recomputed,
  /// falling back to a full re-run past `max_delta_fraction`. Results
  /// are row-identical either way. See README "Performance & tuning".
  IncrementalOptions incremental;
  /// Knowledge-base durability: write-ahead logging of every KB
  /// mutation, atomic checkpoints and crash recovery at session open
  /// (kb/durability.h, DESIGN.md §5i). Off by default — the commit path
  /// is then identical to the purely in-memory one. With `enabled`,
  /// `directory` must name a writable location; the session recovers
  /// whatever committed state that directory holds before the first
  /// Run().
  DurabilityOptions durability;
  /// Applied to every transducer registered through the session
  /// (standard suite and custom). Used by the fault-injection soak
  /// harness (fault_injection.h); nullptr means no wrapping.
  TransducerRegistry::Decorator transducer_decorator;
  /// Name of the final result relation in the knowledge base.
  std::string result_relation = "wrangled_result";
  /// Display name under which the session registers itself in the
  /// observability session registry (the /sessions endpoint; DESIGN.md
  /// §5g). Names need not be unique — the registry id disambiguates.
  std::string session_name = "wrangling-session";
};

/// Mutable state shared by the standard transducers and the session that
/// owns them. The knowledge base remains the source of truth for
/// everything Datalog-visible (matches, mappings, metrics, feedback
/// existence); this struct holds the richer C++ objects behind them.
struct WranglingState {
  WranglerConfig config;
  /// Name of the target-schema relation registered in the KB.
  std::string target_relation;
  DataContext data_context;
  UserContext user_context;
  FeedbackStore feedback;
  /// CFDs learned by the cfd_learning transducer (KB holds the serialised
  /// form; this cache holds the evidence relation the checker needs).
  std::vector<Cfd> cfds;
  Relation cfd_evidence;
  bool has_cfd_evidence = false;
  /// Memoised feedback lineage: once an annotation is attributed to the
  /// matches that fed it, the attribution is permanent — even after the
  /// resulting penalty changes the mappings (see MatchAttribution docs).
  std::vector<MatchAttribution> feedback_attributions;
  std::set<size_t> attributed_feedback_items;
  /// Per-transducer-body fingerprint of the (name, version) pairs of
  /// every relation the body read or wrote, taken at the end of its last
  /// successful run. The orchestrator re-runs a ready transducer
  /// whenever *anything* in the KB changed; bodies use this memo to
  /// narrow that to their own read/write set and skip recomputation
  /// that would reproduce the KB byte for byte (see UpToDate in
  /// standard_transducers.cc).
  std::map<std::string, std::vector<std::pair<std::string, uint64_t>>>
      body_run_versions;
  /// The session's KB change log when config.incremental.enabled (the
  /// session owns the log and attaches it to the KB); nullptr otherwise.
  DeltaLog* delta_log = nullptr;
  /// Per-mapping differential-maintenance state (DESIGN.md §5k), keyed
  /// by mapping id; entries of mappings that no longer exist are pruned
  /// after each mapping-execution run.
  std::map<std::string, MappingDeltaState> mapping_delta;
  /// Version-keyed snapshot cache for mapping execution's source loads
  /// (always on — correctness is guaranteed by KB relation versions;
  /// see datalog/snapshot_cache.h). Every mapping that reads a source
  /// relation borrows one shared immutable snapshot instead of
  /// re-interning the relation per mapping per run.
  datalog::SnapshotCache mapping_source_cache;
};

}  // namespace vada

#endif  // VADA_WRANGLER_CONFIG_H_
