#include "wrangler/standard_transducers.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <set>

#include "feedback/propagation.h"
#include "fusion/fuser.h"
#include "mapping/executor.h"
#include "mapping/mapping.h"
#include "quality/metrics.h"

namespace vada {

namespace {

/// Names of relations holding source instances, sorted (deterministic).
std::vector<std::string> SourceNames(const KnowledgeBase& kb) {
  return kb.catalog().RelationsWithRole(RelationRole::kSource);
}

Result<Schema> TargetSchema(const KnowledgeBase& kb,
                            const WranglingState& state) {
  Result<const Relation*> target = kb.GetRelation(state.target_relation);
  if (!target.ok()) {
    return Status::FailedPrecondition("target relation " +
                                      state.target_relation +
                                      " missing from knowledge base");
  }
  return target.value()->schema();
}

/// Reads matches from a KB relation, tolerating its absence.
std::vector<MatchCandidate> ReadMatches(const KnowledgeBase& kb,
                                        const std::string& relation_name) {
  const Relation* rel = kb.FindRelation(relation_name);
  if (rel == nullptr) return {};
  Result<std::vector<MatchCandidate>> parsed = MatchesFromRelation(*rel);
  return parsed.ok() ? std::move(parsed).value() : std::vector<MatchCandidate>{};
}

Result<std::vector<Mapping>> ReadMappings(const KnowledgeBase& kb) {
  const Relation* rel = kb.FindRelation("mapping");
  if (rel == nullptr) return std::vector<Mapping>{};
  return MappingsFromRelation(*rel);
}

/// The relation a mapping's consumers should read: the repaired variant
/// when the repair transducer produced one, else the raw result.
const Relation* EffectiveResult(const KnowledgeBase& kb, const Mapping& m) {
  const Relation* repaired = kb.FindRelation("repaired_" + m.id);
  if (repaired != nullptr) return repaired;
  return kb.FindRelation(m.result_predicate);
}

Status WriteMetadataRelation(KnowledgeBase* kb, const Relation& rel) {
  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(rel));
  kb->catalog().SetRole(rel.name(), RelationRole::kMetadata);
  return Status::OK();
}

/// (name, version) fingerprint of `relations` (version 0 = absent).
std::vector<std::pair<std::string, uint64_t>> VersionFingerprint(
    const KnowledgeBase& kb, const std::vector<std::string>& relations) {
  std::vector<std::pair<std::string, uint64_t>> fp;
  fp.reserve(relations.size());
  for (const std::string& r : relations) {
    fp.emplace_back(r, kb.relation_version(r));
  }
  return fp;
}

/// True when every relation `body` reads or writes still has the version
/// recorded at the end of its last successful run — re-running would
/// reproduce the KB byte for byte, so the caller may return immediately.
/// The orchestrator re-runs a ready transducer whenever *anything* in
/// the KB changed; this narrows that test to the body's own read/write
/// set. Output relations belong in `relations` too: if a rollback or
/// another writer touched them, their version moved and the body
/// recomputes. Bodies whose inputs include non-KB state (feedback,
/// user context) must not use this unless that state is mirrored in a
/// listed relation.
bool UpToDate(const WranglingState& state, const KnowledgeBase& kb,
              const std::string& body,
              const std::vector<std::string>& relations) {
  auto it = state.body_run_versions.find(body);
  return it != state.body_run_versions.end() &&
         it->second == VersionFingerprint(kb, relations);
}

/// Records the post-run fingerprint for `body` (call after all writes).
void RecordRun(WranglingState* state, const KnowledgeBase& kb,
               const std::string& body,
               const std::vector<std::string>& relations) {
  state->body_run_versions[body] = VersionFingerprint(kb, relations);
}

// ---------------------------------------------------------------------------
// Transducer bodies.
// ---------------------------------------------------------------------------

Status SchemaMatchingBody(WranglingState* state, KnowledgeBase* kb) {
  Result<Schema> target = TargetSchema(*kb, *state);
  if (!target.ok()) return target.status();
  SchemaMatcher matcher(state->config.schema_matcher);
  std::vector<MatchCandidate> all;
  for (const std::string& source : SourceNames(*kb)) {
    const Relation* rel = kb->FindRelation(source);
    if (rel == nullptr) continue;
    std::vector<MatchCandidate> matches =
        matcher.Match(rel->schema(), target.value());
    all.insert(all.end(), matches.begin(), matches.end());
  }
  return WriteMetadataRelation(kb, MatchesToRelation(all, "match_schema"));
}

Status InstanceMatchingBody(WranglingState* state, KnowledgeBase* kb) {
  Result<Schema> target = TargetSchema(*kb, *state);
  if (!target.ok()) return target.status();
  std::vector<std::string> deps{state->target_relation, "match_instance"};
  for (const std::string& source : SourceNames(*kb)) deps.push_back(source);
  for (const DataContextBinding& binding : state->data_context.bindings()) {
    deps.push_back(binding.context_relation);
  }
  if (UpToDate(*state, *kb, "instance_matching", deps)) return Status::OK();
  InstanceMatcher matcher(state->config.instance_matcher);
  std::vector<MatchCandidate> all;
  for (const std::string& source : SourceNames(*kb)) {
    const Relation* src = kb->FindRelation(source);
    if (src == nullptr || src->empty()) continue;
    for (const DataContextBinding& binding : state->data_context.bindings()) {
      const Relation* ctx = kb->FindRelation(binding.context_relation);
      if (ctx == nullptr || ctx->empty()) continue;
      std::vector<std::pair<std::string, std::string>> rename;
      for (const ContextCorrespondence& c : binding.correspondences) {
        rename.push_back({c.context_attribute, c.target_attribute});
      }
      std::vector<MatchCandidate> matches = matcher.Match(
          *src, *ctx, target.value().relation_name(), rename);
      for (MatchCandidate& m : matches) {
        // Keep only candidates that land on actual target attributes.
        if (target.value().AttributeIndex(m.target_attribute).has_value()) {
          all.push_back(std::move(m));
        }
      }
    }
  }
  VADA_RETURN_IF_ERROR(WriteMetadataRelation(
      kb, MatchesToRelation(BestPerPair(std::move(all)), "match_instance")));
  RecordRun(state, *kb, "instance_matching", deps);
  return Status::OK();
}

Status MatchCombinationBody(WranglingState* state, KnowledgeBase* kb) {
  std::vector<MatchCandidate> all = ReadMatches(*kb, "match_schema");
  std::vector<MatchCandidate> inst = ReadMatches(*kb, "match_instance");
  all.insert(all.end(), inst.begin(), inst.end());
  std::vector<MatchCandidate> combined =
      CombineMatches(all, state->config.combiner);

  // Apply feedback penalties persisted by the feedback transducer.
  const Relation* penalties = kb->FindRelation("match_penalty");
  if (penalties != nullptr) {
    for (const Tuple& row : penalties->rows()) {
      if (row.size() != 4) continue;
      std::optional<double> factor = row.at(3).AsDouble();
      if (!factor.has_value()) continue;
      for (MatchCandidate& m : combined) {
        if (m.source_relation == row.at(0).ToString() &&
            m.source_attribute == row.at(1).ToString() &&
            m.target_attribute == row.at(2).ToString()) {
          m.score = std::min(1.0, m.score * *factor);
        }
      }
    }
  }
  return WriteMetadataRelation(kb, MatchesToRelation(combined, "match"));
}

Status MappingGenerationBody(WranglingState* state, KnowledgeBase* kb) {
  Result<Schema> target = TargetSchema(*kb, *state);
  if (!target.ok()) return target.status();
  // Sources vetoed by source selection contribute no mappings.
  std::set<std::string> excluded;
  if (const Relation* ex = kb->FindRelation("excluded_source");
      ex != nullptr) {
    for (const Tuple& row : ex->rows()) excluded.insert(row.at(0).ToString());
  }
  std::vector<Schema> sources;
  for (const std::string& name : SourceNames(*kb)) {
    if (excluded.count(name) > 0) continue;
    const Relation* rel = kb->FindRelation(name);
    if (rel != nullptr) sources.push_back(rel->schema());
  }
  MappingGenerator generator(state->config.generator);
  Result<std::vector<Mapping>> mappings =
      generator.Generate(target.value(), sources, ReadMatches(*kb, "match"));
  if (!mappings.ok()) return mappings.status();
  return WriteMetadataRelation(kb, MappingsToRelation(mappings.value()));
}

Status MappingExecutionBody(WranglingState* state, KnowledgeBase* kb) {
  Result<Schema> target = TargetSchema(*kb, *state);
  if (!target.ok()) return target.status();
  Result<std::vector<Mapping>> mappings = ReadMappings(*kb);
  if (!mappings.ok()) return mappings.status();
  std::vector<std::string> deps{state->target_relation, "mapping"};
  for (const Mapping& m : mappings.value()) {
    deps.insert(deps.end(), m.source_relations.begin(),
                m.source_relations.end());
    deps.push_back(m.result_predicate);
  }
  if (UpToDate(*state, *kb, "mapping_execution", deps)) return Status::OK();
  MappingExecutor executor(state->config.planner);
  executor.set_snapshot_cache(&state->mapping_source_cache);
  const bool incremental =
      state->config.incremental.enabled && state->delta_log != nullptr;
  for (const Mapping& m : mappings.value()) {
    Result<Relation> result =
        incremental ? executor.ExecuteIncremental(
                          m, target.value(), *kb, *state->delta_log,
                          state->config.incremental.max_delta_fraction,
                          &state->mapping_delta[m.id])
                    : executor.Execute(m, target.value(), *kb);
    if (!result.ok()) return result.status();
    VADA_RETURN_IF_ERROR(WriteMetadataRelation(kb, result.value()));
  }
  if (incremental) {
    // Drop maintained state of mappings that no longer exist.
    std::set<std::string> live;
    for (const Mapping& m : mappings.value()) live.insert(m.id);
    for (auto it = state->mapping_delta.begin();
         it != state->mapping_delta.end();) {
      it = live.count(it->first) > 0 ? std::next(it)
                                     : state->mapping_delta.erase(it);
    }
  }
  RecordRun(state, *kb, "mapping_execution", deps);
  return Status::OK();
}

Status CfdLearningBody(WranglingState* state, KnowledgeBase* kb) {
  CfdLearner learner(state->config.cfd_learner);
  std::vector<Cfd> cfds;
  Relation evidence;
  bool have_evidence = false;

  for (const DataContextBinding& binding : state->data_context.bindings()) {
    if (binding.kind != RelationRole::kReference &&
        binding.kind != RelationRole::kMaster) {
      continue;
    }
    if (binding.correspondences.size() < 2) continue;  // no pair to relate
    const Relation* ctx = kb->FindRelation(binding.context_relation);
    if (ctx == nullptr || ctx->empty()) continue;

    // Project onto corresponded attributes, renamed into the target
    // vocabulary, so learned CFDs speak about target attributes.
    std::vector<std::string> ctx_attrs;
    std::vector<Attribute> tgt_attrs;
    for (const ContextCorrespondence& c : binding.correspondences) {
      ctx_attrs.push_back(c.context_attribute);
      tgt_attrs.push_back(Attribute{c.target_attribute, AttributeType::kAny});
    }
    Result<Relation> projected = ctx->Project(
        ctx_attrs, "cfd_learning_" + binding.context_relation);
    if (!projected.ok()) return projected.status();
    Relation renamed(
        Schema("cfd_learning_" + binding.context_relation, tgt_attrs));
    for (const Tuple& row : projected.value().rows()) {
      VADA_RETURN_IF_ERROR(renamed.InsertUnchecked(row));
    }

    std::vector<Cfd> learned = learner.Learn(renamed);
    cfds.insert(cfds.end(), learned.begin(), learned.end());
    if (!have_evidence) {
      evidence = std::move(renamed);
      have_evidence = true;
    }
  }

  state->cfds = cfds;
  state->cfd_evidence = std::move(evidence);
  state->has_cfd_evidence = have_evidence;
  return WriteMetadataRelation(kb, CfdsToRelation(cfds));
}

Status MappingRepairBody(WranglingState* state, KnowledgeBase* kb) {
  if (state->cfds.empty()) return Status::OK();
  Result<std::vector<Mapping>> mappings = ReadMappings(*kb);
  if (!mappings.ok()) return mappings.status();
  // state->cfds / cfd_evidence are mirrored by the "cfd" relation, which
  // cfd_learning rewrites whenever they change.
  std::vector<std::string> deps{"cfd", "mapping"};
  for (const Mapping& m : mappings.value()) {
    deps.push_back(m.result_predicate);
    deps.push_back("repaired_" + m.id);
  }
  if (UpToDate(*state, *kb, "mapping_repair", deps)) return Status::OK();
  CfdChecker checker(state->cfds,
                     state->has_cfd_evidence ? &state->cfd_evidence : nullptr);
  for (const Mapping& m : mappings.value()) {
    const Relation* raw = kb->FindRelation(m.result_predicate);
    if (raw == nullptr) continue;
    Relation repaired(Schema("repaired_" + m.id, raw->schema().attributes()));
    for (const Tuple& row : raw->rows()) {
      VADA_RETURN_IF_ERROR(repaired.InsertUnchecked(row));
    }
    Result<size_t> count = checker.Repair(&repaired);
    if (!count.ok()) return count.status();
    VADA_RETURN_IF_ERROR(WriteMetadataRelation(kb, repaired));
  }
  RecordRun(state, *kb, "mapping_repair", deps);
  return Status::OK();
}

Status QualityMetricsBody(WranglingState* state, KnowledgeBase* kb) {
  Result<std::vector<Mapping>> mappings = ReadMappings(*kb);
  if (!mappings.ok()) return mappings.status();

  std::vector<std::string> deps{"mapping", "cfd", "quality_metric"};
  for (const DataContextBinding& binding : state->data_context.bindings()) {
    deps.push_back(binding.context_relation);
  }
  for (const Mapping& m : mappings.value()) {
    deps.push_back(m.result_predicate);
    deps.push_back("repaired_" + m.id);
  }
  if (UpToDate(*state, *kb, "quality_metrics", deps)) return Status::OK();

  QualityEstimator estimator;
  // Accuracy reference: the first reference binding with instances.
  for (const DataContextBinding* binding :
       state->data_context.BindingsOfKind(RelationRole::kReference)) {
    const Relation* ref = kb->FindRelation(binding->context_relation);
    if (ref != nullptr && !ref->empty()) {
      estimator.SetReference(ref, binding->correspondences);
      break;
    }
  }
  if (!state->cfds.empty()) {
    estimator.SetCfds(state->cfds,
                      state->has_cfd_evidence ? &state->cfd_evidence : nullptr);
  }
  // Relevance: the first master binding with instances.
  for (const DataContextBinding* binding :
       state->data_context.BindingsOfKind(RelationRole::kMaster)) {
    const Relation* master = kb->FindRelation(binding->context_relation);
    if (master != nullptr && !master->empty()) {
      estimator.SetMaster(master, binding->correspondences);
      break;
    }
  }

  std::vector<QualityMetricFact> facts;
  for (const Mapping& m : mappings.value()) {
    const Relation* rel = EffectiveResult(*kb, m);
    if (rel == nullptr) continue;
    std::vector<QualityMetricFact> part = estimator.EstimateFacts(*rel, m.id);
    facts.insert(facts.end(), part.begin(), part.end());
  }
  VADA_RETURN_IF_ERROR(
      WriteMetadataRelation(kb, QualityMetricsToRelation(facts)));
  RecordRun(state, *kb, "quality_metrics", deps);
  return Status::OK();
}

Status SourceQualityBody(WranglingState* state, KnowledgeBase* kb) {
  QualityEstimator estimator;
  // Source attribute names generally differ from the target vocabulary,
  // so accuracy-vs-reference does not apply here; completeness (and
  // consistency once CFDs exist on matching attribute names) does.
  if (!state->cfds.empty()) {
    estimator.SetCfds(state->cfds,
                      state->has_cfd_evidence ? &state->cfd_evidence : nullptr);
  }
  std::vector<QualityMetricFact> facts;
  for (const std::string& source : SourceNames(*kb)) {
    const Relation* rel = kb->FindRelation(source);
    if (rel == nullptr) continue;
    std::vector<QualityMetricFact> part = estimator.EstimateFacts(*rel, source);
    facts.insert(facts.end(), part.begin(), part.end());
  }
  return WriteMetadataRelation(
      kb, QualityMetricsToRelation(facts, "source_quality"));
}

Status SourceSelectionBody(WranglingState* state, KnowledgeBase* kb) {
  const Relation* quality_rel = kb->FindRelation("source_quality");
  if (quality_rel == nullptr) return Status::OK();
  Result<std::vector<QualityMetricFact>> parsed =
      QualityMetricsFromRelation(*quality_rel);
  if (!parsed.ok()) return parsed.status();

  // Trust per source: mean of its quality metric values. (Attribute
  // subjects are in the source's own vocabulary, so user-context weights
  // do not apply directly; tuple-level feedback correctness is folded in
  // below when available.)
  std::map<std::string, std::pair<double, size_t>> sums;
  for (const QualityMetricFact& f : parsed.value()) {
    auto& [sum, count] = sums[f.entity];
    sum += f.value;
    ++count;
  }

  Relation trust(Schema::Untyped("source_trust", {"source", "trust"}));
  Relation excluded(Schema::Untyped("excluded_source", {"source"}));
  for (const std::string& source : SourceNames(*kb)) {
    auto it = sums.find(source);
    double score =
        (it == sums.end() || it->second.second == 0)
            ? 1.0
            : it->second.first / static_cast<double>(it->second.second);
    VADA_RETURN_IF_ERROR(trust.InsertUnchecked(
        Tuple({Value::String(source), Value::Double(score)})));
    if (state->config.source_selector.exclude_below_min &&
        score < state->config.source_selector.min_trust) {
      VADA_RETURN_IF_ERROR(
          excluded.InsertUnchecked(Tuple({Value::String(source)})));
    }
  }
  VADA_RETURN_IF_ERROR(WriteMetadataRelation(kb, trust));
  return WriteMetadataRelation(kb, excluded);
}

Status MappingSelectionBody(WranglingState* state, KnowledgeBase* kb) {
  Result<std::vector<Mapping>> mappings = ReadMappings(*kb);
  if (!mappings.ok()) return mappings.status();
  const Relation* metric_rel = kb->FindRelation("quality_metric");
  std::vector<QualityMetricFact> metrics;
  if (metric_rel != nullptr) {
    Result<std::vector<QualityMetricFact>> parsed =
        QualityMetricsFromRelation(*metric_rel);
    if (!parsed.ok()) return parsed.status();
    metrics = std::move(parsed).value();
  }
  // Keep only metrics about mappings (sources have their own facts).
  std::set<std::string> ids;
  for (const Mapping& m : mappings.value()) ids.insert(m.id);
  std::vector<QualityMetricFact> mapping_metrics;
  for (QualityMetricFact& f : metrics) {
    if (ids.count(f.entity) > 0) mapping_metrics.push_back(std::move(f));
  }

  std::optional<CriterionWeights> weights;
  if (!state->user_context.empty()) {
    Result<CriterionWeights> derived = state->user_context.DeriveWeights();
    if (!derived.ok()) return derived.status();
    weights = std::move(derived).value();
  }

  MappingSelector selector(state->config.selector);
  std::vector<MappingScore> scores = selector.Score(
      mappings.value(), mapping_metrics,
      weights.has_value() ? &*weights : nullptr);
  std::vector<std::string> selected = selector.Select(scores);

  Relation rel(Schema::Untyped("selected_mapping", {"id", "score", "rank"}));
  for (size_t rank = 0; rank < selected.size(); ++rank) {
    double score = 0.0;
    for (const MappingScore& s : scores) {
      if (s.mapping_id == selected[rank]) {
        score = s.total;
        break;
      }
    }
    VADA_RETURN_IF_ERROR(rel.InsertUnchecked(
        Tuple({Value::String(selected[rank]), Value::Double(score),
               Value::Int(static_cast<int64_t>(rank))})));
  }
  return WriteMetadataRelation(kb, rel);
}

Status FusionBody(WranglingState* state, KnowledgeBase* kb) {
  Result<Schema> target = TargetSchema(*kb, *state);
  if (!target.ok()) return target.status();
  Result<std::vector<Mapping>> mappings = ReadMappings(*kb);
  if (!mappings.ok()) return mappings.status();
  std::vector<std::string> deps{state->target_relation, "mapping",
                                "selected_mapping", "source_trust",
                                state->config.result_relation};
  for (const Mapping& m : mappings.value()) {
    deps.push_back(m.result_predicate);
    deps.push_back("repaired_" + m.id);
  }
  if (UpToDate(*state, *kb, "fusion", deps)) return Status::OK();
  const Relation* selected_rel = kb->FindRelation("selected_mapping");
  if (selected_rel == nullptr) return Status::OK();
  std::set<std::string> selected;
  for (const Tuple& row : selected_rel->rows()) {
    selected.insert(row.at(0).ToString());
  }

  // Per-source trust (from source selection) weights the fusion votes:
  // a row's weight is the mean trust of its mapping's sources.
  std::map<std::string, double> trust_of;
  if (const Relation* trust = kb->FindRelation("source_trust");
      trust != nullptr) {
    for (const Tuple& row : trust->rows()) {
      std::optional<double> v = row.at(1).AsDouble();
      if (v.has_value()) trust_of[row.at(0).ToString()] = *v;
    }
  }

  Relation unioned(Schema(state->config.result_relation,
                          target.value().attributes()));
  std::unordered_map<Tuple, double, TupleHash> weight_of_row;
  for (const Mapping& m : mappings.value()) {
    if (selected.count(m.id) == 0) continue;
    const Relation* rel = EffectiveResult(*kb, m);
    if (rel == nullptr) continue;
    double weight = 0.0;
    for (const std::string& src : m.source_relations) {
      auto it = trust_of.find(src);
      weight += (it == trust_of.end()) ? 1.0 : it->second;
    }
    weight /= m.source_relations.empty()
                  ? 1.0
                  : static_cast<double>(m.source_relations.size());
    for (const Tuple& row : rel->rows()) {
      VADA_RETURN_IF_ERROR(unioned.InsertUnchecked(row));
      // A row reachable through several mappings keeps its highest trust.
      double& w = weight_of_row.emplace(row, weight).first->second;
      w = std::max(w, weight);
    }
  }
  std::vector<double> row_weights;
  row_weights.reserve(unioned.size());
  for (const Tuple& row : unioned.rows()) {
    auto it = weight_of_row.find(row);
    row_weights.push_back(it == weight_of_row.end() ? 1.0 : it->second);
  }

  // Duplicate detection + fusion. Blocking: configured attributes, else
  // "postcode" when the target has one, else unblocked for small inputs.
  DedupOptions dedup = state->config.dedup;
  if (dedup.blocking_attributes.empty() &&
      target.value().AttributeIndex("postcode").has_value()) {
    dedup.blocking_attributes = {"postcode"};
  }
  DuplicateDetector detector(dedup);
  Result<DuplicateClusters> clusters = detector.Cluster(unioned);
  if (!clusters.ok()) return clusters.status();
  FusionOptions fusion_options;
  fusion_options.row_weights = std::move(row_weights);
  Fuser fuser(fusion_options);
  Result<Relation> fused =
      fuser.Fuse(unioned, clusters.value(), state->config.result_relation);
  if (!fused.ok()) return fused.status();

  VADA_RETURN_IF_ERROR(kb->ReplaceRelationIfChanged(fused.value()));
  kb->catalog().SetRole(state->config.result_relation, RelationRole::kResult);
  RecordRun(state, *kb, "fusion", deps);
  return Status::OK();
}

Status FeedbackPropagationBody(WranglingState* state, KnowledgeBase* kb) {
  if (state->feedback.empty()) return Status::OK();
  Result<std::vector<Mapping>> mappings = ReadMappings(*kb);
  if (!mappings.ok()) return mappings.status();

  // Lineage relations: raw and repaired rows merged per mapping id.
  std::map<std::string, Relation> results;
  for (const Mapping& m : mappings.value()) {
    Relation merged(Schema("lineage_" + m.id,
                           std::vector<Attribute>{}));
    const Relation* raw = kb->FindRelation(m.result_predicate);
    const Relation* repaired = kb->FindRelation("repaired_" + m.id);
    const Relation* base = (raw != nullptr) ? raw : repaired;
    if (base == nullptr) continue;
    merged = Relation(Schema("lineage_" + m.id, base->schema().attributes()));
    for (const Relation* part : {raw, repaired}) {
      if (part == nullptr) continue;
      for (const Tuple& row : part->rows()) {
        VADA_RETURN_IF_ERROR(merged.InsertUnchecked(row));
      }
    }
    results.emplace(m.id, std::move(merged));
  }

  std::vector<MatchCandidate> matches = ReadMatches(*kb, "match");
  FeedbackPropagator propagator(state->config.propagator);

  // Attribute any not-yet-attributed items against the current lineage.
  // Attributions are memoised in the session state: the penalty they
  // induce typically changes the mappings, which would erase the lineage
  // and (without the memo) flip the penalty straight back — a livelock.
  const std::vector<FeedbackItem>& items = state->feedback.items();
  for (size_t i = 0; i < items.size(); ++i) {
    if (state->attributed_feedback_items.count(i) > 0) continue;
    std::vector<MatchAttribution> part =
        propagator.AttributeItem(items, i, mappings.value(), results, matches);
    if (part.empty()) continue;  // no lineage yet; retry on a later run
    state->attributed_feedback_items.insert(i);
    state->feedback_attributions.insert(state->feedback_attributions.end(),
                                        part.begin(), part.end());
  }

  // Persist the multiplicative factors. They are a pure function of the
  // memoised attributions, so rewriting them is idempotent.
  Relation penalties(Schema::Untyped(
      "match_penalty",
      {"source_relation", "source_attribute", "target_attribute", "factor"}));
  for (const auto& [key, factor] :
       propagator.FactorsFrom(state->feedback_attributions)) {
    if (factor > 0.999 && factor < 1.001) continue;
    penalties.InsertUnchecked(
        Tuple({Value::String(std::get<0>(key)), Value::String(std::get<1>(key)),
               Value::String(std::get<2>(key)), Value::Double(factor)}));
  }
  return WriteMetadataRelation(kb, penalties);
}

std::unique_ptr<Transducer> Make(const char* name, const char* activity,
                                 std::string dependency, WranglingState* state,
                                 Status (*body)(WranglingState*,
                                                KnowledgeBase*)) {
  return std::make_unique<FunctionTransducer>(
      name, activity, std::move(dependency),
      [state, body](KnowledgeBase* kb) { return body(state, kb); });
}

}  // namespace

Status RegisterStandardTransducers(TransducerRegistry* registry,
                                   WranglingState* state) {
  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "schema_matching", "matching",
      "ready() :- sys_relation_role(_S, \"source\"), "
      "sys_relation_role(_T, \"target\").",
      state, &SchemaMatchingBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "instance_matching", "matching",
      "ready() :- sys_relation_role(S, \"source\"), "
      "sys_relation_nonempty(S), data_context(R, _K, _TA, _CA), "
      "sys_relation_nonempty(R).",
      state, &InstanceMatchingBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "match_combination", "matching",
      "ready() :- sys_relation_nonempty(\"match_schema\").\n"
      "ready() :- sys_relation_nonempty(\"match_instance\").",
      state, &MatchCombinationBody)));

  VADA_RETURN_IF_ERROR(registry->Add(
      Make("mapping_generation", "mapping",
           "ready() :- sys_relation_nonempty(\"match\").", state,
           &MappingGenerationBody)));

  VADA_RETURN_IF_ERROR(registry->Add(
      Make("mapping_execution", "execution",
           "ready() :- sys_relation_nonempty(\"mapping\").", state,
           &MappingExecutionBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "cfd_learning", "quality",
      "ready() :- data_context(R, \"reference\", _TA, _CA), "
      "sys_relation_nonempty(R).\n"
      "ready() :- data_context(R, \"master\", _TA, _CA), "
      "sys_relation_nonempty(R).",
      state, &CfdLearningBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "mapping_repair", "repair",
      "ready() :- sys_relation_nonempty(\"cfd\"), "
      "sys_relation_nonempty(\"mapping\").",
      state, &MappingRepairBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "quality_metrics", "quality",
      "ready() :- mapping(_I, _T, _S, _C, P, _X), sys_relation_nonempty(P).",
      state, &QualityMetricsBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "source_quality", "quality",
      "ready() :- sys_relation_role(S, \"source\"), "
      "sys_relation_nonempty(S).",
      state, &SourceQualityBody)));

  VADA_RETURN_IF_ERROR(registry->Add(
      Make("source_selection", "selection",
           "ready() :- sys_relation_nonempty(\"source_quality\").", state,
           &SourceSelectionBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "mapping_selection", "selection",
      "ready() :- sys_relation_nonempty(\"mapping\"), "
      "sys_relation_nonempty(\"quality_metric\").",
      state, &MappingSelectionBody)));

  VADA_RETURN_IF_ERROR(registry->Add(
      Make("fusion", "fusion",
           "ready() :- sys_relation_nonempty(\"selected_mapping\").", state,
           &FusionBody)));

  VADA_RETURN_IF_ERROR(registry->Add(Make(
      "feedback_propagation", "feedback",
      "ready() :- sys_relation_nonempty(\"feedback\"), "
      "sys_relation_nonempty(\"mapping\").",
      state, &FeedbackPropagationBody)));

  return Status::OK();
}

}  // namespace vada
