#ifndef VADA_WRANGLER_SESSION_H_
#define VADA_WRANGLER_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datalog/explain.h"
#include "datalog/snapshot_cache.h"
#include "kb/knowledge_base.h"
#include "obs/obs.h"
#include "quality/metrics.h"
#include "transducer/network.h"
#include "wrangler/config.h"
#include "wrangler/standard_transducers.h"

namespace vada {

/// The session's observability snapshot plus both machine-readable
/// renderings (see WranglingSession::MetricsReport). All fields are
/// empty when the session runs with ObsOptions{enabled = false}.
struct SessionMetricsReport {
  obs::MetricsSnapshot snapshot;
  std::string prometheus;    ///< Prometheus text exposition format
  std::string chrome_trace;  ///< Chrome trace-event JSON (Perfetto)

  bool empty() const { return snapshot.empty(); }
};

/// The public facade of the VADA architecture: one pay-as-you-go data
/// wrangling task (paper §3). The user supplies, in any order and at any
/// time, the four kinds of input the demonstration walks through —
/// sources + target schema (step 1), data context (step 2), feedback
/// (step 3), user context (step 4) — and calls Run() after each change;
/// the network transducer dynamically re-orchestrates whatever became
/// possible.
///
///   WranglingSession session;
///   session.SetTargetSchema(target);
///   session.AddSource(rightmove);
///   session.AddSource(deprivation);
///   session.Run();                        // step 1: bootstrap
///   session.AddDataContext(address, RelationRole::kReference, {...});
///   session.Run();                        // step 2: + data context
///   session.AddFeedback({tuple, "bedrooms", FeedbackPolarity::kIncorrect});
///   session.Run();                        // step 3: + feedback
///   session.SetUserContext(user_context);
///   session.Run();                        // step 4: + user context
///   const Relation* result = session.result();
class WranglingSession {
 public:
  explicit WranglingSession(WranglerConfig config = WranglerConfig());

  // Moves would invalidate the transducers' pointer to state_.
  WranglingSession(const WranglingSession&) = delete;
  WranglingSession& operator=(const WranglingSession&) = delete;

  /// Declares the target schema (registered as an empty KB relation with
  /// role kTarget). Must be called before the first Run.
  Status SetTargetSchema(const Schema& target);

  /// Registers an extracted source instance (role kSource).
  Status AddSource(const Relation& data);

  /// Associates data-context data with the target schema. `kind` must be
  /// kReference, kMaster or kExample; `correspondences` map target
  /// attributes to `data`'s attributes.
  Status AddDataContext(const Relation& data, RelationRole kind,
                        std::vector<ContextCorrespondence> correspondences);

  /// Replaces the user context (pairwise priorities).
  Status SetUserContext(const UserContext& user_context);

  /// Records one feedback annotation against the current result.
  Status AddFeedback(const FeedbackItem& item);

  /// Registers a custom transducer alongside the standard suite — the
  /// paper's extensibility route ("additional transducers can be added
  /// at any time").
  Status AddTransducer(std::unique_ptr<Transducer> transducer);

  /// Orchestrates to fixpoint. Callable repeatedly; each call picks up
  /// whatever inputs changed since the last one. With durability
  /// enabled, a sticky durability failure (failed WAL append or
  /// checkpoint) is surfaced here even when orchestration succeeded.
  Status Run(OrchestrationStats* stats = nullptr);

  /// Takes a durability checkpoint now: atomic KB image plus WAL
  /// truncation (kb/durability.h). kFailedPrecondition when the session
  /// runs without durability.
  Status Checkpoint();

  /// The durability manager (nullptr when config.durability.enabled is
  /// false or recovery failed at construction).
  const DurabilityManager* durability() const { return durability_.get(); }

  /// The KB change log driving differential mapping maintenance
  /// (nullptr when config.incremental.enabled is false). See DESIGN.md
  /// §5k.
  const DeltaLog* delta_log() const { return delta_log_.get(); }

  /// EXPLAIN of the last mapping-execution round under differential
  /// maintenance (DESIGN.md §5k): one line per maintained mapping with
  /// the plan its evaluator chose — per-stratum delta strategies
  /// (skip / counting / monotone / recompute) or the full-run fallback
  /// and why. kFailedPrecondition when config.incremental.enabled is
  /// false; notes when no mapping has executed yet.
  Result<std::string> ExplainIncremental() const;

  /// Outcome of crash recovery at construction. OK when durability is
  /// off; kDataLoss when the durable state was unrecoverable. Run()
  /// refuses to proceed on a non-OK open status.
  Status durability_open_status() const { return durability_open_status_; }

  /// The wrangled result (nullptr before the first successful Run).
  const Relation* result() const;

  /// Quality of the current result under the session's current evidence
  /// (reference data and CFDs, when present).
  Result<RelationQuality> EstimateResultQuality() const;

  /// Candidate mappings / selected mapping ids currently in the KB.
  std::vector<Mapping> mappings() const;
  std::vector<std::string> selected_mappings() const;

  /// Explains where a result row came from: the mapping(s) whose results
  /// contain it, each with its rule and (via reasoner provenance) the
  /// ground source tuples it was derived from; notes when the row only
  /// exists post-repair or was assembled by fusion. This is the row-level
  /// counterpart of the orchestration trace.
  Result<std::string> ExplainResultRow(const Tuple& row) const;

  /// EXPLAIN / EXPLAIN ANALYZE one Vadalog program against the current
  /// knowledge base (DESIGN.md §5g): the chosen literal order,
  /// per-literal cost estimates and index-vs-scan decisions, and — with
  /// `analyze` — actual per-literal probes, candidates and time. The
  /// program runs (analyze) or is planned (plain) over a scratch
  /// database loaded with the relations it references; the KB is never
  /// mutated and no session metrics are recorded. Uses the session's
  /// configured planner options, so the plan is the one mapping
  /// execution and dependency scans would run with.
  Result<datalog::PlanExplain> ExplainProgram(const std::string& program_text,
                                              bool analyze = false) const;

  /// One-stop observability readout: refreshes the KB gauges
  /// (vada_kb_relation_rows et al.), snapshots the session's metrics
  /// registry, and renders both export formats. Non-empty after any
  /// Run() unless the session was built with ObsOptions{enabled=false}.
  SessionMetricsReport MetricsReport() const;

  /// The live observability context (metrics registry + span collector);
  /// disabled contexts return nullptr from metrics()/spans().
  const obs::ObsContext& obs() const { return *obs_; }

  const ExecutionTrace& trace() const { return orchestrator_->trace(); }
  /// Orchestrator readout (quarantine/failure state, trace). The session
  /// owns it for its whole lifetime.
  const NetworkTransducer& orchestrator() const { return *orchestrator_; }
  KnowledgeBase& kb() { return kb_; }
  const KnowledgeBase& kb() const { return kb_; }
  const WranglingState& state() const { return *state_; }

  /// The snapshot cache backing config.parallelism.snapshot_cache
  /// (nullptr when the cache is off). Exposed for tests and benches that
  /// assert on hit/miss statistics.
  const datalog::SnapshotCache* snapshot_cache() const {
    return snapshot_cache_.get();
  }

 private:
  void PublishKbGauges() const;

  /// Registration-time static analysis of a transducer's Vadalog (input
  /// dependency, and the program of a VadalogTransducer) under
  /// config.analysis. See AnalysisEnforcement.
  Status ValidateTransducer(const Transducer& transducer) const;

  KnowledgeBase kb_;
  /// Declared right after kb_ (and destroyed before it) because the
  /// manager detaches from the KB in its destructor.
  std::unique_ptr<DurabilityManager> durability_;
  /// The KB change log when config.incremental.enabled; attached to kb_
  /// at construction and referenced (non-owning) by state_->delta_log.
  std::unique_ptr<DeltaLog> delta_log_;
  Status durability_open_status_;
  std::unique_ptr<WranglingState> state_;
  std::unique_ptr<obs::ObsContext> obs_;
  /// Registration in the observability session registry; inert when
  /// observability is disabled. Updated from PublishKbGauges, which
  /// const MetricsReport() also calls.
  mutable obs::SessionRegistry::SessionHandle session_handle_;
  TransducerRegistry registry_;
  /// Worker pool and snapshot cache backing config.parallelism (null
  /// when threads <= 1 / the cache is off). Declared before the
  /// orchestrator, which borrows raw pointers to both, so they outlive
  /// it on destruction.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<datalog::SnapshotCache> snapshot_cache_;
  std::unique_ptr<NetworkTransducer> orchestrator_;
  bool transducers_registered_ = false;
};

}  // namespace vada

#endif  // VADA_WRANGLER_SESSION_H_
