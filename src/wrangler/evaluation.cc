#include "wrangler/evaluation.h"

#include <algorithm>
#include <set>

namespace vada {

std::string ScenarioEvaluation::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "rows=%zu crimerank_completeness=%.3f "
                "bedrooms_plausible=%.3f postcode_valid=%.3f "
                "street_valid=%.3f coverage=%.3f field_completeness=%.3f overall=%.3f",
                rows, crimerank_completeness, bedrooms_plausible_rate,
                postcode_valid_rate, street_valid_rate, coverage, field_completeness, overall);
  return buf;
}

ScenarioEvaluation EvaluateScenario(const Relation& result,
                                    const GroundTruth& truth) {
  ScenarioEvaluation out;
  out.rows = result.size();
  if (result.empty()) return out;

  std::set<std::string> valid_postcodes(truth.postcodes.begin(),
                                        truth.postcodes.end());
  std::set<std::string> valid_streets;
  for (const Tuple& row : truth.properties.rows()) {
    valid_streets.insert(row.at(1).string_value());
  }

  auto rate = [&result](const std::string& attr, auto&& predicate,
                        double* out_rate) {
    std::optional<size_t> idx = result.schema().AttributeIndex(attr);
    if (!idx.has_value()) {
      *out_rate = 0.0;
      return;
    }
    size_t non_null = 0;
    size_t good = 0;
    for (const Tuple& row : result.rows()) {
      const Value& v = row.at(*idx);
      if (v.is_null()) continue;
      ++non_null;
      if (predicate(v)) ++good;
    }
    *out_rate = (non_null == 0)
                    ? 0.0
                    : static_cast<double>(good) / static_cast<double>(non_null);
  };

  // Crimerank completeness (over all rows, not just non-null ones).
  {
    std::optional<size_t> idx = result.schema().AttributeIndex("crimerank");
    if (idx.has_value()) {
      size_t non_null = 0;
      for (const Tuple& row : result.rows()) {
        if (!row.at(*idx).is_null()) ++non_null;
      }
      out.crimerank_completeness =
          static_cast<double>(non_null) / static_cast<double>(result.size());
    }
  }

  rate("bedrooms",
       [](const Value& v) {
         std::optional<double> d = v.AsDouble();
         return d.has_value() && *d >= 0.0 && *d <= 8.0;
       },
       &out.bedrooms_plausible_rate);
  rate("postcode",
       [&valid_postcodes](const Value& v) {
         return v.type() == ValueType::kString &&
                valid_postcodes.count(v.string_value()) > 0;
       },
       &out.postcode_valid_rate);
  rate("street",
       [&valid_streets](const Value& v) {
         return v.type() == ValueType::kString &&
                valid_streets.count(v.string_value()) > 0;
       },
       &out.street_valid_rate);

  if (!truth.properties.empty()) {
    out.coverage = std::min(
        1.0, static_cast<double>(result.size()) /
                 static_cast<double>(truth.properties.size()));
  }

  {
    double sum = 0.0;
    int counted = 0;
    for (const char* attr :
         {"type", "description", "street", "postcode", "bedrooms", "price"}) {
      Result<double> frac = result.NonNullFraction(attr);
      sum += frac.ok() ? frac.value() : 0.0;
      ++counted;
    }
    out.field_completeness = counted > 0 ? sum / counted : 0.0;
  }

  out.overall = (out.crimerank_completeness + out.bedrooms_plausible_rate +
                 out.postcode_valid_rate + out.street_valid_rate +
                 out.coverage + out.field_completeness) /
                6.0;
  return out;
}

}  // namespace vada
