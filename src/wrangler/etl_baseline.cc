#include "wrangler/etl_baseline.h"

#include "fusion/fuser.h"
#include "kb/knowledge_base.h"
#include "mapping/executor.h"
#include "mapping/generator.h"
#include "match/combiner.h"
#include "match/schema_matcher.h"

namespace vada {

EtlPipeline::EtlPipeline(WranglerConfig config) : config_(std::move(config)) {}

Result<Relation> EtlPipeline::Run(const Schema& target,
                                  const std::vector<Relation>& sources,
                                  EtlReport* report) const {
  EtlReport local;
  EtlReport* rep = (report != nullptr) ? report : &local;

  // 1. Schema matching (the only matcher a static pipeline can run: there
  // is no data context to enable instance matching).
  SchemaMatcher matcher(config_.schema_matcher);
  std::vector<MatchCandidate> candidates;
  std::vector<Schema> source_schemas;
  for (const Relation& src : sources) {
    std::vector<MatchCandidate> part = matcher.Match(src.schema(), target);
    candidates.insert(candidates.end(), part.begin(), part.end());
    source_schemas.push_back(src.schema());
  }
  ++rep->component_runs;

  // 2. Match consolidation.
  std::vector<MatchCandidate> matches =
      CombineMatches(candidates, config_.combiner);
  ++rep->component_runs;

  // 3. Mapping generation.
  MappingGenerator generator(config_.generator);
  Result<std::vector<Mapping>> mappings =
      generator.Generate(target, source_schemas, matches);
  if (!mappings.ok()) return mappings.status();
  rep->mappings_generated = mappings.value().size();
  ++rep->component_runs;

  // 4. Execute every mapping and union (no quality-driven selection).
  KnowledgeBase kb;
  for (const Relation& src : sources) {
    VADA_RETURN_IF_ERROR(kb.InsertAll(src));
  }
  MappingExecutor executor(config_.planner);
  Result<Relation> unioned = executor.ExecuteUnion(
      mappings.value(), target, kb, config_.result_relation);
  if (!unioned.ok()) return unioned.status();
  ++rep->component_runs;

  // 5. Dedup + fuse.
  DedupOptions dedup = config_.dedup;
  if (dedup.blocking_attributes.empty() &&
      target.AttributeIndex("postcode").has_value()) {
    dedup.blocking_attributes = {"postcode"};
  }
  DuplicateDetector detector(dedup);
  Result<DuplicateClusters> clusters = detector.Cluster(unioned.value());
  if (!clusters.ok()) return clusters.status();
  Fuser fuser;
  Result<Relation> fused = fuser.Fuse(unioned.value(), clusters.value(),
                                      config_.result_relation);
  if (!fused.ok()) return fused.status();
  ++rep->component_runs;

  rep->result_rows = fused.value().size();
  return fused;
}

}  // namespace vada
