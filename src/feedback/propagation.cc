#include "feedback/propagation.h"

#include <algorithm>
#include <set>

namespace vada {

FeedbackPropagator::FeedbackPropagator(PropagatorOptions options)
    : options_(options) {}

std::vector<MatchAttribution> FeedbackPropagator::AttributeItem(
    const std::vector<FeedbackItem>& items, size_t item_index,
    const std::vector<Mapping>& mappings,
    const std::map<std::string, Relation>& mapping_results,
    const std::vector<MatchCandidate>& matches) const {
  std::vector<MatchAttribution> out;
  if (item_index >= items.size()) return out;
  const FeedbackItem& item = items[item_index];

  // Deduplicate across mappings: the same match may feed several
  // mappings' results, but one annotation is one piece of evidence.
  std::set<std::tuple<std::string, std::string, std::string>> seen;

  for (const Mapping& mapping : mappings) {
    auto rit = mapping_results.find(mapping.id);
    if (rit == mapping_results.end()) continue;
    if (!rit->second.Contains(item.tuple)) continue;

    std::vector<std::string> affected;
    double strength = 1.0;
    if (!item.attribute.empty()) {
      affected.push_back(item.attribute);
    } else {
      affected = mapping.covered_attributes;
      strength = options_.tuple_level_factor;
    }

    for (const std::string& attr : affected) {
      for (const MatchCandidate& m : matches) {
        if (m.target_attribute != attr) continue;
        if (std::find(mapping.source_relations.begin(),
                      mapping.source_relations.end(),
                      m.source_relation) == mapping.source_relations.end()) {
          continue;
        }
        auto key = std::make_tuple(m.source_relation, m.source_attribute,
                                   m.target_attribute);
        if (!seen.insert(key).second) continue;
        MatchAttribution a;
        a.item_index = item_index;
        a.source_relation = m.source_relation;
        a.source_attribute = m.source_attribute;
        a.target_attribute = m.target_attribute;
        a.strength = strength;
        a.polarity = item.polarity;
        out.push_back(std::move(a));
      }
    }
  }
  return out;
}

std::map<std::tuple<std::string, std::string, std::string>, double>
FeedbackPropagator::FactorsFrom(
    const std::vector<MatchAttribution>& attributions) const {
  std::map<std::tuple<std::string, std::string, std::string>, double> factors;
  for (const MatchAttribution& a : attributions) {
    auto key = std::make_tuple(a.source_relation, a.source_attribute,
                               a.target_attribute);
    double& f = factors.emplace(key, 1.0).first->second;
    if (a.polarity == FeedbackPolarity::kIncorrect) {
      f *= 1.0 - options_.penalty * a.strength;
    } else {
      f *= 1.0 + options_.reinforcement * a.strength;
    }
  }
  return factors;
}

Result<PropagationResult> FeedbackPropagator::Propagate(
    const std::vector<FeedbackItem>& items, const std::vector<Mapping>& mappings,
    const std::map<std::string, Relation>& mapping_results,
    std::vector<MatchCandidate> matches) const {
  PropagationResult out;

  std::vector<MatchAttribution> attributions;
  // Tuple-level tallies per source relation.
  std::map<std::string, std::pair<size_t, size_t>> tallies;  // (correct, total)

  for (size_t i = 0; i < items.size(); ++i) {
    std::vector<MatchAttribution> part =
        AttributeItem(items, i, mappings, mapping_results, matches);
    attributions.insert(attributions.end(), part.begin(), part.end());

    if (items[i].attribute.empty()) {
      // Tuple-level: maintain the per-source correctness tallies.
      for (const Mapping& mapping : mappings) {
        auto rit = mapping_results.find(mapping.id);
        if (rit == mapping_results.end()) continue;
        if (!rit->second.Contains(items[i].tuple)) continue;
        for (const std::string& src : mapping.source_relations) {
          auto& [correct, total] = tallies[src];
          ++total;
          if (items[i].polarity == FeedbackPolarity::kCorrect) ++correct;
        }
      }
    }
  }

  auto factors = FactorsFrom(attributions);
  std::set<std::tuple<std::string, std::string, std::string>> penalized;
  std::set<std::tuple<std::string, std::string, std::string>> reinforced;
  for (MatchCandidate& m : matches) {
    auto key = std::make_tuple(m.source_relation, m.source_attribute,
                               m.target_attribute);
    auto it = factors.find(key);
    if (it == factors.end()) continue;
    double revised = std::min(1.0, m.score * it->second);
    if (revised < m.score) penalized.insert(key);
    if (revised > m.score) reinforced.insert(key);
    m.score = revised;
    m.matcher = "feedback";
  }
  out.matches_penalized = penalized.size();
  out.matches_reinforced = reinforced.size();

  for (const auto& [src, tally] : tallies) {
    const auto& [correct, total] = tally;
    out.source_correctness[src] =
        total == 0 ? 1.0
                   : static_cast<double>(correct) / static_cast<double>(total);
  }
  out.revised_matches = std::move(matches);
  return out;
}

}  // namespace vada
