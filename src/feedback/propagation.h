#ifndef VADA_FEEDBACK_PROPAGATION_H_
#define VADA_FEEDBACK_PROPAGATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "feedback/feedback.h"
#include "kb/relation.h"
#include "mapping/mapping.h"
#include "match/match_types.h"

namespace vada {

/// Options controlling how feedback revises evidence.
struct PropagatorOptions {
  /// Multiplicative penalty per incorrect annotation on a match. Chosen
  /// so that single annotations merely nudge the score while roughly a
  /// dozen corroborating annotations push a strong match (~0.95) below
  /// the mapping generator's default inclusion threshold (0.45) — i.e.
  /// sustained evidence retires the match, noise does not.
  double penalty = 0.06;
  /// Multiplicative reinforcement per correct annotation (capped at 1).
  double reinforcement = 0.05;
  /// Tuple-level feedback spreads over all covered attributes at this
  /// fraction of the attribute-level effect.
  double tuple_level_factor = 0.4;
};

/// One attributed feedback item: the match (identified by source
/// relation/attribute and target attribute) that fed the annotated value,
/// plus the revision strength. Attributions are value-based lineage
/// resolved at the time the feedback arrives; sessions memoise them so a
/// later change of mappings (often *caused* by the penalty) cannot erase
/// the evidence — otherwise penalty and lineage chase each other and the
/// orchestration never converges.
struct MatchAttribution {
  size_t item_index = 0;  ///< index into the feedback store's items
  std::string source_relation;
  std::string source_attribute;
  std::string target_attribute;
  double strength = 1.0;  ///< 1 for attribute-level, lower for tuple-level
  FeedbackPolarity polarity = FeedbackPolarity::kIncorrect;
};

/// Result of a propagation pass.
struct PropagationResult {
  std::vector<MatchCandidate> revised_matches;
  size_t matches_penalized = 0;
  size_t matches_reinforced = 0;
  /// Per-source estimated correctness from tuple-level feedback.
  std::map<std::string, double> source_correctness;
};

/// The paper's Mapping Evaluation / feedback loop (§2.3): "a mapping
/// evaluation transducer ... may identify a problem with a specific match
/// used within the mapping, and revise the score of that match in the
/// knowledge base. This may in turn lead to the rerunning of the mapping
/// generation transducer."
///
/// Lineage is value-based: an annotated tuple is attributed to every
/// mapping whose result relation contains it; the match feeding the
/// annotated attribute in that mapping takes the score revision.
class FeedbackPropagator {
 public:
  explicit FeedbackPropagator(PropagatorOptions options = PropagatorOptions());

  /// Revises `matches` given feedback `items` and per-mapping results
  /// (`mapping_results` keyed by mapping id). One-shot convenience:
  /// attributes all items against the given lineage and applies factors.
  Result<PropagationResult> Propagate(
      const std::vector<FeedbackItem>& items,
      const std::vector<Mapping>& mappings,
      const std::map<std::string, Relation>& mapping_results,
      std::vector<MatchCandidate> matches) const;

  /// Resolves lineage for the item at `item_index`: which matches fed the
  /// annotated value, through which mappings. Empty when no mapping's
  /// result contains the tuple (the item can be retried later).
  std::vector<MatchAttribution> AttributeItem(
      const std::vector<FeedbackItem>& items, size_t item_index,
      const std::vector<Mapping>& mappings,
      const std::map<std::string, Relation>& mapping_results,
      const std::vector<MatchCandidate>& matches) const;

  /// Multiplicative score factor per match key (source_relation,
  /// source_attribute, target_attribute), aggregated over attributions.
  std::map<std::tuple<std::string, std::string, std::string>, double>
  FactorsFrom(const std::vector<MatchAttribution>& attributions) const;

 private:
  PropagatorOptions options_;
};

}  // namespace vada

#endif  // VADA_FEEDBACK_PROPAGATION_H_
