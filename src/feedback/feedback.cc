#include "feedback/feedback.h"

namespace vada {

const char* FeedbackPolarityName(FeedbackPolarity polarity) {
  switch (polarity) {
    case FeedbackPolarity::kCorrect:
      return "correct";
    case FeedbackPolarity::kIncorrect:
      return "incorrect";
  }
  return "?";
}

std::string FeedbackItem::ToString() const {
  std::string out = tuple.ToString();
  if (!attribute.empty()) out += "." + attribute;
  out += " is ";
  out += FeedbackPolarityName(polarity);
  return out;
}

void FeedbackStore::Add(FeedbackItem item) { items_.push_back(std::move(item)); }

void FeedbackStore::Clear() { items_.clear(); }

std::vector<const FeedbackItem*> FeedbackStore::ItemsForAttribute(
    const std::string& attribute) const {
  std::vector<const FeedbackItem*> out;
  for (const FeedbackItem& item : items_) {
    if (item.attribute == attribute) out.push_back(&item);
  }
  return out;
}

Relation FeedbackStore::ToRelation(const std::string& relation_name) const {
  Relation rel(
      Schema::Untyped(relation_name, {"tuple_key", "attribute", "polarity"}));
  for (const FeedbackItem& item : items_) {
    rel.InsertUnchecked(
        Tuple({Value::String(std::to_string(item.tuple.Hash())),
               Value::String(item.attribute),
               Value::String(FeedbackPolarityName(item.polarity))}));
  }
  return rel;
}

}  // namespace vada
