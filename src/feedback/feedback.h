#ifndef VADA_FEEDBACK_FEEDBACK_H_
#define VADA_FEEDBACK_FEEDBACK_H_

#include <string>
#include <vector>

#include "kb/relation.h"

namespace vada {

/// User verdict on a result tuple or one of its attribute values.
enum class FeedbackPolarity { kCorrect, kIncorrect };

const char* FeedbackPolarityName(FeedbackPolarity polarity);

/// One annotation, per the paper §3 step 3: "feedback ... can be at the
/// tuple level or the attribute level".
struct FeedbackItem {
  /// The annotated result tuple (value-identified: results are sets).
  Tuple tuple;
  /// Attribute the verdict concerns; empty = whole tuple.
  std::string attribute;
  FeedbackPolarity polarity = FeedbackPolarity::kIncorrect;

  std::string ToString() const;
};

/// Collects feedback and renders it as the KB control relation
/// feedback(tuple_key, attribute, polarity), whose non-emptiness is the
/// input dependency of feedback-driven transducers.
class FeedbackStore {
 public:
  FeedbackStore() = default;

  void Add(FeedbackItem item);
  void Clear();

  const std::vector<FeedbackItem>& items() const { return items_; }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  /// Items concerning `attribute` (tuple-level items excluded).
  std::vector<const FeedbackItem*> ItemsForAttribute(
      const std::string& attribute) const;

  Relation ToRelation(const std::string& relation_name = "feedback") const;

 private:
  std::vector<FeedbackItem> items_;
};

}  // namespace vada

#endif  // VADA_FEEDBACK_FEEDBACK_H_
