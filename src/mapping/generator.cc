#include "mapping/generator.h"

#include <algorithm>
#include <set>

namespace vada {

namespace {

/// Variable name for a target attribute: "V_price". Target attribute
/// names are lowercase identifiers in this codebase; prefixing keeps the
/// result a valid Datalog variable regardless.
std::string VarFor(const std::string& target_attr) {
  std::string out = "V_";
  for (char c : target_attr) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

/// Correspondences of one source: target attribute -> source attribute.
using SourceCorrespondences = std::map<std::string, std::string>;

/// Renders the body atom for `source`, putting the variable of the
/// matched target attribute at each matched position and a fresh unused
/// variable elsewhere. `suffix` keeps don't-care variables distinct
/// between two atoms of a join.
std::string SourceAtom(const Schema& source,
                       const SourceCorrespondences& corr,
                       const std::string& suffix) {
  std::string out = source.relation_name() + "(";
  int fresh = 0;
  for (size_t i = 0; i < source.arity(); ++i) {
    if (i > 0) out += ", ";
    const std::string& attr = source.attributes()[i].name;
    std::string var;
    for (const auto& [target_attr, source_attr] : corr) {
      if (source_attr == attr) {
        var = VarFor(target_attr);
        break;
      }
    }
    if (var.empty()) {
      var = "U" + suffix + std::to_string(fresh++);
    }
    out += var;
  }
  out += ")";
  return out;
}

/// Renders the head: matched target attributes become variables, others
/// become null constants.
std::string HeadAtom(const std::string& predicate, const Schema& target,
                     const std::set<std::string>& covered) {
  std::string out = predicate + "(";
  for (size_t i = 0; i < target.arity(); ++i) {
    if (i > 0) out += ", ";
    const std::string& attr = target.attributes()[i].name;
    out += (covered.count(attr) > 0) ? VarFor(attr) : std::string("null");
  }
  out += ")";
  return out;
}

}  // namespace

MappingGenerator::MappingGenerator(MappingGeneratorOptions options)
    : options_(options) {}

Result<std::vector<Mapping>> MappingGenerator::Generate(
    const Schema& target, const std::vector<Schema>& sources,
    const std::vector<MatchCandidate>& matches) const {
  VADA_RETURN_IF_ERROR(target.Validate());

  // Index correspondences per source relation, keeping the best match per
  // target attribute.
  std::map<std::string, SourceCorrespondences> corr_of;
  std::map<std::string, std::map<std::string, double>> score_of;
  for (const MatchCandidate& m : matches) {
    if (m.score < options_.min_match_score) continue;
    if (m.target_relation != target.relation_name()) continue;
    if (!target.AttributeIndex(m.target_attribute).has_value()) continue;
    double& best = score_of[m.source_relation][m.target_attribute];
    if (m.score > best) {
      best = m.score;
      corr_of[m.source_relation][m.target_attribute] = m.source_attribute;
    }
  }

  std::vector<Mapping> out;
  int next_id = 0;
  auto make_id = [&next_id](const std::string& desc) {
    return "m" + std::to_string(next_id++) + "_" + desc;
  };

  // Projection mappings.
  for (const Schema& source : sources) {
    auto it = corr_of.find(source.relation_name());
    if (it == corr_of.end() || it->second.empty()) continue;
    std::set<std::string> covered;
    for (const auto& [t, s] : it->second) covered.insert(t);

    Mapping m;
    m.id = make_id(source.relation_name());
    m.source_relations = {source.relation_name()};
    m.target_relation = target.relation_name();
    m.covered_attributes.assign(covered.begin(), covered.end());
    m.result_predicate = "mapping_result_" + m.id;
    m.rule_text = HeadAtom(m.result_predicate, target, covered) + " :- " +
                  SourceAtom(source, it->second, "a") + ".";
    out.push_back(std::move(m));
    if (out.size() >= options_.max_candidates) return out;
  }

  if (!options_.generate_joins) return out;

  // Two-way join mappings.
  for (size_t i = 0; i < sources.size(); ++i) {
    auto it1 = corr_of.find(sources[i].relation_name());
    if (it1 == corr_of.end()) continue;
    for (size_t j = 0; j < sources.size(); ++j) {
      if (i == j) continue;
      auto it2 = corr_of.find(sources[j].relation_name());
      if (it2 == corr_of.end()) continue;

      // Join attributes: target attributes both sources match.
      std::set<std::string> join_attrs;
      for (const auto& [t, s] : it1->second) {
        if (it2->second.count(t) > 0) join_attrs.insert(t);
      }
      if (join_attrs.empty()) continue;

      // The second source must contribute something new; and to avoid the
      // mirrored duplicate (s2 ⋈ s1), require i < j unless coverage is
      // asymmetric.
      std::set<std::string> extra2;
      for (const auto& [t, s] : it2->second) {
        if (it1->second.count(t) == 0) extra2.insert(t);
      }
      if (extra2.empty()) continue;
      std::set<std::string> extra1;
      for (const auto& [t, s] : it1->second) {
        if (it2->second.count(t) == 0) extra1.insert(t);
      }
      // When both orientations are viable (each side adds something), the
      // two joins cover the same attributes; emit only the i < j one.
      if (i > j && !extra1.empty()) continue;

      // Head coverage: everything source 1 matches plus source 2 extras.
      std::set<std::string> covered;
      for (const auto& [t, s] : it1->second) covered.insert(t);
      covered.insert(extra2.begin(), extra2.end());

      // Source-2 correspondences restricted to join attrs + its extras,
      // so shared variables implement the equi-join and non-join overlap
      // does not over-constrain.
      SourceCorrespondences corr2;
      for (const auto& [t, s] : it2->second) {
        if (join_attrs.count(t) > 0 || extra2.count(t) > 0) corr2[t] = s;
      }

      Mapping m;
      m.id = make_id(sources[i].relation_name() + "_join_" +
                     sources[j].relation_name());
      m.source_relations = {sources[i].relation_name(),
                            sources[j].relation_name()};
      m.target_relation = target.relation_name();
      m.covered_attributes.assign(covered.begin(), covered.end());
      m.result_predicate = "mapping_result_" + m.id;
      m.rule_text = HeadAtom(m.result_predicate, target, covered) + " :- " +
                    SourceAtom(sources[i], it1->second, "a") + ", " +
                    SourceAtom(sources[j], corr2, "b") + ".";
      out.push_back(std::move(m));
      if (out.size() >= options_.max_candidates) return out;
    }
  }
  return out;
}

}  // namespace vada
