#include "mapping/mapping.h"

#include "common/strings.h"

namespace vada {

std::string Mapping::ToString() const {
  return id + ": " + Join(source_relations, " join ") + " -> " +
         target_relation + " [" + Join(covered_attributes, ", ") + "]\n  " +
         rule_text;
}

Relation MappingsToRelation(const std::vector<Mapping>& mappings,
                            const std::string& relation_name) {
  Relation rel(Schema::Untyped(
      relation_name, {"id", "target_relation", "source_relations",
                      "covered_attributes", "result_predicate", "rule_text"}));
  for (const Mapping& m : mappings) {
    rel.InsertUnchecked(Tuple({Value::String(m.id),
                               Value::String(m.target_relation),
                               Value::String(Join(m.source_relations, "|")),
                               Value::String(Join(m.covered_attributes, "|")),
                               Value::String(m.result_predicate),
                               Value::String(m.rule_text)}));
  }
  return rel;
}

Result<std::vector<Mapping>> MappingsFromRelation(const Relation& rel) {
  if (rel.schema().arity() != 6) {
    return Status::InvalidArgument("mapping relation must have arity 6");
  }
  std::vector<Mapping> out;
  for (const Tuple& t : rel.rows()) {
    Mapping m;
    m.id = t.at(0).ToString();
    m.target_relation = t.at(1).ToString();
    m.source_relations = Split(t.at(2).ToString(), '|');
    if (!t.at(3).is_null() && !t.at(3).ToString().empty()) {
      m.covered_attributes = Split(t.at(3).ToString(), '|');
    }
    m.result_predicate = t.at(4).ToString();
    m.rule_text = t.at(5).ToString();
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace vada
