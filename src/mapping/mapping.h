#ifndef VADA_MAPPING_MAPPING_H_
#define VADA_MAPPING_MAPPING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "kb/relation.h"

namespace vada {

/// A candidate schema mapping. Following the paper (§2: "Vadalog ...
/// representing schema mappings"), the mapping body IS a Datalog rule
/// whose head predicate is `result_predicate` and whose body ranges over
/// the source relations; executing the mapping means evaluating the rule.
struct Mapping {
  std::string id;
  std::vector<std::string> source_relations;
  std::string target_relation;
  /// Target attributes this mapping can fill with non-null values.
  std::vector<std::string> covered_attributes;
  /// Head predicate of `rule_text` ("mapping_result_<id>").
  std::string result_predicate;
  /// The Vadalog rule, e.g.
  ///   mapping_result_m0(Vtype, null, Vstreet, ...) :- rightmove(...).
  std::string rule_text;

  std::string ToString() const;
};

/// Serialises mappings as the KB control relation
/// mapping(id, target_relation, source_relations, covered_attributes,
/// result_predicate, rule_text) with '|'-joined lists. Storing rules as
/// data in the knowledge base is what lets a Mapping Selection transducer
/// declare "mappings exist" as a Datalog input dependency.
Relation MappingsToRelation(const std::vector<Mapping>& mappings,
                            const std::string& relation_name = "mapping");

Result<std::vector<Mapping>> MappingsFromRelation(const Relation& rel);

}  // namespace vada

#endif  // VADA_MAPPING_MAPPING_H_
