#include "mapping/selector.h"

#include <algorithm>
#include <set>

namespace vada {

std::string MappingScore::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", total);
  std::string out = mapping_id + ": " + buf;
  for (const auto& [criterion, wv] : per_criterion) {
    std::snprintf(buf, sizeof(buf), " %s w=%.3f v=%.3f", criterion.c_str(),
                  wv.first, wv.second);
    out += buf;
  }
  return out;
}

MappingSelector::MappingSelector(SelectorOptions options) : options_(options) {}

std::vector<MappingScore> MappingSelector::Score(
    const std::vector<Mapping>& mappings,
    const std::vector<QualityMetricFact>& metrics,
    const CriterionWeights* weights) const {
  // Index metrics: mapping id -> criterion id -> value. Whole-entity
  // metrics (subject "") use the entity's relation-level criterion id
  // "metric(target)"; attribute metrics use "metric(attribute)".
  std::map<std::string, std::map<std::string, double>> metric_of;
  std::set<std::string> all_criteria;
  for (const QualityMetricFact& f : metrics) {
    std::string criterion =
        f.metric + "(" + (f.subject.empty() ? "*" : f.subject) + ")";
    metric_of[f.entity][criterion] = f.value;
    all_criteria.insert(criterion);
  }

  // Weight per criterion id. User weights address subjects like
  // "crimerank" or "property.bedrooms"; metric facts use bare attribute
  // names, so match on the last dotted component.
  auto weight_for = [&](const std::string& criterion) -> double {
    if (weights == nullptr || weights->weight_of.empty()) return 1.0;
    double min_user = 1.0;
    for (const auto& [id, w] : weights->weight_of) {
      min_user = std::min(min_user, w);
    }
    // criterion is "metric(subject)".
    size_t open = criterion.find('(');
    std::string metric = criterion.substr(0, open);
    std::string subject =
        criterion.substr(open + 1, criterion.size() - open - 2);
    for (const auto& [id, w] : weights->weight_of) {
      size_t uopen = id.find('(');
      std::string umetric = id.substr(0, uopen);
      std::string usubject = id.substr(uopen + 1, id.size() - uopen - 2);
      if (umetric != metric) continue;
      // "property.bedrooms" matches subject "bedrooms"; "property" (no
      // dot) matches the whole-entity subject "*".
      size_t dot = usubject.rfind('.');
      std::string uattr =
          (dot == std::string::npos) ? usubject : usubject.substr(dot + 1);
      if (uattr == subject || (subject == "*" && dot == std::string::npos)) {
        return w;
      }
    }
    return min_user * options_.unmentioned_weight_factor;
  };

  std::vector<MappingScore> out;
  for (const Mapping& m : mappings) {
    MappingScore s;
    s.mapping_id = m.id;
    auto it = metric_of.find(m.id);
    double weight_sum = 0.0;
    double value_sum = 0.0;
    for (const std::string& criterion : all_criteria) {
      double value = 0.0;
      if (it != metric_of.end()) {
        auto vit = it->second.find(criterion);
        if (vit != it->second.end()) value = vit->second;
      }
      double w = weight_for(criterion);
      s.per_criterion[criterion] = {w, value};
      weight_sum += w;
      value_sum += w * value;
    }
    s.total = (weight_sum > 0.0) ? value_sum / weight_sum : 0.0;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MappingScore& a, const MappingScore& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.mapping_id < b.mapping_id;
            });
  return out;
}

std::vector<std::string> MappingSelector::Select(
    const std::vector<MappingScore>& scores) const {
  std::vector<std::string> out;
  if (scores.empty()) return out;
  double best = scores.front().total;
  for (const MappingScore& s : scores) {
    if (best > 0.0 && s.total < options_.relative_threshold * best) break;
    if (best <= 0.0 && s.total < best) break;
    out.push_back(s.mapping_id);
    if (options_.max_selected > 0 && out.size() >= options_.max_selected) {
      break;
    }
  }
  return out;
}

}  // namespace vada
