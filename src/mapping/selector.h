#ifndef VADA_MAPPING_SELECTOR_H_
#define VADA_MAPPING_SELECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "context/user_context.h"
#include "mapping/mapping.h"
#include "quality/metrics.h"

namespace vada {

/// Score breakdown of one candidate mapping.
struct MappingScore {
  std::string mapping_id;
  double total = 0.0;
  /// criterion id ("completeness(crimerank)") -> (weight, metric value).
  std::map<std::string, std::pair<double, double>> per_criterion;

  std::string ToString() const;
};

/// Options for multi-criteria mapping selection.
struct SelectorOptions {
  /// A mapping is selected when its score >= relative_threshold * best.
  double relative_threshold = 0.85;
  /// Hard cap on selected mappings (0 = unbounded).
  size_t max_selected = 0;
  /// Weight applied to criteria that the user context does not mention
  /// (they still matter, slightly) relative to the smallest user weight.
  double unmentioned_weight_factor = 0.25;
};

/// The paper's Mapping Selection transducer: ranks candidate mappings on
/// the quality metrics in the knowledge base, weighted by the AHP-derived
/// user-context weights ("the pairwise comparisons are used to derive
/// weights that inform the selection of mappings based on
/// multi-dimensional optimization", §3 step 4).
class MappingSelector {
 public:
  explicit MappingSelector(SelectorOptions options = SelectorOptions());

  /// Scores each mapping. `metrics` are facts whose entity is a mapping
  /// id; `weights` may be null (equal weights over every observed
  /// criterion — the bootstrap behaviour before any user context exists).
  std::vector<MappingScore> Score(const std::vector<Mapping>& mappings,
                                  const std::vector<QualityMetricFact>& metrics,
                                  const CriterionWeights* weights) const;

  /// Selects mappings whose score clears the relative threshold, best
  /// first. Returns mapping ids.
  std::vector<std::string> Select(const std::vector<MappingScore>& scores)
      const;

 private:
  SelectorOptions options_;
};

}  // namespace vada

#endif  // VADA_MAPPING_SELECTOR_H_
