#ifndef VADA_MAPPING_GENERATOR_H_
#define VADA_MAPPING_GENERATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "kb/schema.h"
#include "mapping/mapping.h"
#include "match/match_types.h"

namespace vada {

/// Options for candidate-mapping generation.
struct MappingGeneratorOptions {
  /// Matches below this score contribute no correspondence.
  double min_match_score = 0.45;
  /// Also propose two-way join mappings when two sources share a matched
  /// target attribute and complement each other's coverage.
  bool generate_joins = true;
  /// Upper bound on generated candidates (defensive; joins are quadratic
  /// in the number of sources).
  size_t max_candidates = 200;
};

/// The paper's Mapping Generation transducer (Table 1: depends on
/// src/target schemas + matches): turns attribute correspondences into
/// executable candidate mappings.
///
/// Generated shapes:
///  * projection — one source relation projected onto the target schema,
///    unmatched target attributes null-padded;
///  * two-way join — two sources equi-joined on every target attribute
///    they both match (e.g. Rightmove ⋈ Deprivation on postcode, which
///    is how `crimerank` reaches the paper's Target table).
class MappingGenerator {
 public:
  explicit MappingGenerator(
      MappingGeneratorOptions options = MappingGeneratorOptions());

  /// Generates candidates for `target` given per-source schemas and the
  /// consolidated match set.
  Result<std::vector<Mapping>> Generate(
      const Schema& target, const std::vector<Schema>& sources,
      const std::vector<MatchCandidate>& matches) const;

 private:
  MappingGeneratorOptions options_;
};

}  // namespace vada

#endif  // VADA_MAPPING_GENERATOR_H_
