#ifndef VADA_MAPPING_EXECUTOR_H_
#define VADA_MAPPING_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/differential.h"
#include "datalog/planner.h"
#include "datalog/provenance.h"
#include "datalog/snapshot_cache.h"
#include "kb/delta_log.h"
#include "kb/knowledge_base.h"
#include "kb/schema.h"
#include "mapping/mapping.h"

namespace vada {

/// Per-mapping state of delta-driven mapping execution (DESIGN.md §5k):
/// a differential evaluator holding the mapping's maintained fixpoint,
/// plus the watermarks that decide whether the next execution can be
/// incremental — the KB global version its state corresponds to, the
/// delta-log rewind epoch (a rollback invalidates version watermarks),
/// and the rule text it was compiled from. Owned by WranglingState,
/// keyed by mapping id.
struct MappingDeltaState {
  std::unique_ptr<datalog::DifferentialEvaluator> eval;
  std::string rule_text;
  /// KB global version the evaluator's base facts were last synced at.
  uint64_t kb_version = 0;
  /// DeltaLog::rewind_epoch at the last sync; a mismatch means a
  /// rollback rewound versions we already consumed — full re-init.
  uint64_t rewind_epoch = 0;
  /// Full (re)initialisations, incl. the first; delta applies live in
  /// eval->lifetime_stats().
  uint64_t full_inits = 0;
};

/// Executes mappings by handing their rule text to the Vadalog reasoner
/// over a knowledge-base snapshot — the paper's "mappings are Vadalog"
/// made operational.
class MappingExecutor {
 public:
  /// `planner` configures join planning of the underlying evaluations
  /// (defaults: indexes + reordering on; see datalog/planner.h).
  explicit MappingExecutor(datalog::PlannerOptions planner = {})
      : planner_(planner) {}

  /// Optional version-keyed snapshot cache for source-relation loads.
  /// When set, each mapping borrows immutable shared snapshots of its
  /// sources (zero-copy, indexes shared across mappings) instead of
  /// re-interning every source relation per Execute call. Not owned;
  /// must outlive the executor. Always safe: snapshots are keyed on KB
  /// relation versions, so a stale entry can never be returned.
  void set_snapshot_cache(datalog::SnapshotCache* cache) { cache_ = cache; }

  /// Evaluates `mapping` against the source instances in `kb` and returns
  /// the result as a relation with the target schema's attribute names,
  /// named `mapping.result_predicate`. When `provenance` is non-null,
  /// records the derivation of every result tuple (rule + ground source
  /// tuples), enabling row-level explanations.
  Result<Relation> Execute(const Mapping& mapping, const Schema& target,
                           const KnowledgeBase& kb,
                           datalog::Provenance* provenance = nullptr) const;

  /// Executes several mappings and unions their results into one relation
  /// named `result_name` with the target schema's attributes.
  Result<Relation> ExecuteUnion(const std::vector<Mapping>& mappings,
                                const Schema& target, const KnowledgeBase& kb,
                                const std::string& result_name) const;

  /// Delta-driven variant of Execute (DESIGN.md §5k): maintains the
  /// mapping's fixpoint in `state` and, when `log` can answer exactly
  /// what changed in the mapping's sources since the last call, routes
  /// only those row deltas through the differential evaluator instead
  /// of re-evaluating from scratch. Falls back to a full
  /// re-initialisation when the state is missing or stale (first call,
  /// changed rule text, a rollback rewound the log, unanswerable
  /// version range) — and the evaluator itself falls back to one full
  /// run when a batch exceeds `max_delta_fraction` of its base facts.
  /// The returned relation is identical to Execute's. Provenance is not
  /// recorded on this path; callers needing row-level explanations
  /// re-execute with Execute.
  Result<Relation> ExecuteIncremental(const Mapping& mapping,
                                      const Schema& target,
                                      const KnowledgeBase& kb,
                                      const DeltaLog& log,
                                      double max_delta_fraction,
                                      MappingDeltaState* state) const;

 private:
  datalog::PlannerOptions planner_;
  datalog::SnapshotCache* cache_ = nullptr;
};

}  // namespace vada

#endif  // VADA_MAPPING_EXECUTOR_H_
