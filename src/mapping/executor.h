#ifndef VADA_MAPPING_EXECUTOR_H_
#define VADA_MAPPING_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/planner.h"
#include "datalog/provenance.h"
#include "datalog/snapshot_cache.h"
#include "kb/knowledge_base.h"
#include "kb/schema.h"
#include "mapping/mapping.h"

namespace vada {

/// Executes mappings by handing their rule text to the Vadalog reasoner
/// over a knowledge-base snapshot — the paper's "mappings are Vadalog"
/// made operational.
class MappingExecutor {
 public:
  /// `planner` configures join planning of the underlying evaluations
  /// (defaults: indexes + reordering on; see datalog/planner.h).
  explicit MappingExecutor(datalog::PlannerOptions planner = {})
      : planner_(planner) {}

  /// Optional version-keyed snapshot cache for source-relation loads.
  /// When set, each mapping borrows immutable shared snapshots of its
  /// sources (zero-copy, indexes shared across mappings) instead of
  /// re-interning every source relation per Execute call. Not owned;
  /// must outlive the executor. Always safe: snapshots are keyed on KB
  /// relation versions, so a stale entry can never be returned.
  void set_snapshot_cache(datalog::SnapshotCache* cache) { cache_ = cache; }

  /// Evaluates `mapping` against the source instances in `kb` and returns
  /// the result as a relation with the target schema's attribute names,
  /// named `mapping.result_predicate`. When `provenance` is non-null,
  /// records the derivation of every result tuple (rule + ground source
  /// tuples), enabling row-level explanations.
  Result<Relation> Execute(const Mapping& mapping, const Schema& target,
                           const KnowledgeBase& kb,
                           datalog::Provenance* provenance = nullptr) const;

  /// Executes several mappings and unions their results into one relation
  /// named `result_name` with the target schema's attributes.
  Result<Relation> ExecuteUnion(const std::vector<Mapping>& mappings,
                                const Schema& target, const KnowledgeBase& kb,
                                const std::string& result_name) const;

 private:
  datalog::PlannerOptions planner_;
  datalog::SnapshotCache* cache_ = nullptr;
};

}  // namespace vada

#endif  // VADA_MAPPING_EXECUTOR_H_
