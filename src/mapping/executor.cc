#include "mapping/executor.h"

#include <algorithm>

#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada {

Result<Relation> MappingExecutor::Execute(const Mapping& mapping,
                                          const Schema& target,
                                          const KnowledgeBase& kb,
                                          datalog::Provenance* provenance)
    const {
  Result<datalog::Program> program = datalog::Parser::Parse(mapping.rule_text);
  if (!program.ok()) {
    return Status::InvalidArgument("mapping " + mapping.id +
                                   " has unparsable rule: " +
                                   program.status().message());
  }
  // Load only the mapping's source relations. Loading the whole KB would
  // feed the *previous* execution's result relation back in as EDB facts
  // of the head predicate, accumulating stale tuples across re-runs.
  datalog::Database db;
  for (const std::string& source : mapping.source_relations) {
    if (cache_ != nullptr) {
      std::shared_ptr<const datalog::Database> snap = cache_->Get(kb, source);
      if (snap != nullptr) db.AttachShared(std::move(snap));
      continue;
    }
    const Relation* rel = kb.FindRelation(source);
    if (rel != nullptr) db.LoadRelation(*rel);
  }
  datalog::EvalOptions eval_options;
  eval_options.planner = planner_;
  datalog::Evaluator eval(program.value(), eval_options);
  VADA_RETURN_IF_ERROR(eval.Prepare());
  VADA_RETURN_IF_ERROR(eval.Run(&db, /*stats=*/nullptr, provenance));
  std::vector<Tuple> sorted = db.facts(mapping.result_predicate);
  std::sort(sorted.begin(), sorted.end());
  Result<std::vector<Tuple>> facts = std::move(sorted);

  Relation out(Schema(mapping.result_predicate, target.attributes()));
  for (const Tuple& t : facts.value()) {
    if (t.size() != target.arity()) {
      return Status::Internal("mapping " + mapping.id +
                              " produced tuple of wrong arity");
    }
    VADA_RETURN_IF_ERROR(out.InsertUnchecked(t));
  }
  return out;
}

Result<Relation> MappingExecutor::ExecuteUnion(
    const std::vector<Mapping>& mappings, const Schema& target,
    const KnowledgeBase& kb, const std::string& result_name) const {
  Relation out(Schema(result_name, target.attributes()));
  for (const Mapping& m : mappings) {
    Result<Relation> part = Execute(m, target, kb);
    if (!part.ok()) return part.status();
    for (const Tuple& t : part.value().rows()) {
      VADA_RETURN_IF_ERROR(out.InsertUnchecked(t));
    }
  }
  return out;
}

}  // namespace vada
