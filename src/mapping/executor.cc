#include "mapping/executor.h"

#include <algorithm>

#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace vada {

Result<Relation> MappingExecutor::Execute(const Mapping& mapping,
                                          const Schema& target,
                                          const KnowledgeBase& kb,
                                          datalog::Provenance* provenance)
    const {
  Result<datalog::Program> program = datalog::Parser::Parse(mapping.rule_text);
  if (!program.ok()) {
    return Status::InvalidArgument("mapping " + mapping.id +
                                   " has unparsable rule: " +
                                   program.status().message());
  }
  // Load only the mapping's source relations. Loading the whole KB would
  // feed the *previous* execution's result relation back in as EDB facts
  // of the head predicate, accumulating stale tuples across re-runs.
  datalog::Database db;
  for (const std::string& source : mapping.source_relations) {
    if (cache_ != nullptr) {
      std::shared_ptr<const datalog::Database> snap = cache_->Get(kb, source);
      if (snap != nullptr) db.AttachShared(std::move(snap));
      continue;
    }
    const Relation* rel = kb.FindRelation(source);
    if (rel != nullptr) db.LoadRelation(*rel);
  }
  datalog::EvalOptions eval_options;
  eval_options.planner = planner_;
  datalog::Evaluator eval(program.value(), eval_options);
  VADA_RETURN_IF_ERROR(eval.Prepare());
  VADA_RETURN_IF_ERROR(eval.Run(&db, /*stats=*/nullptr, provenance));
  std::vector<Tuple> sorted = db.facts(mapping.result_predicate);
  std::sort(sorted.begin(), sorted.end());
  Result<std::vector<Tuple>> facts = std::move(sorted);

  Relation out(Schema(mapping.result_predicate, target.attributes()));
  for (const Tuple& t : facts.value()) {
    if (t.size() != target.arity()) {
      return Status::Internal("mapping " + mapping.id +
                              " produced tuple of wrong arity");
    }
    VADA_RETURN_IF_ERROR(out.InsertUnchecked(t));
  }
  return out;
}

Result<Relation> MappingExecutor::ExecuteIncremental(
    const Mapping& mapping, const Schema& target, const KnowledgeBase& kb,
    const DeltaLog& log, double max_delta_fraction,
    MappingDeltaState* state) const {
  // The maintained state is reusable only when it was built from this
  // rule text, no rollback rewound versions we already consumed, and
  // the log can answer every source's range exactly.
  bool reusable = state->eval != nullptr &&
                  state->rule_text == mapping.rule_text &&
                  state->rewind_epoch == log.rewind_epoch();
  datalog::RelationDelta delta;
  if (reusable) {
    for (const std::string& source : mapping.source_relations) {
      std::optional<DeltaLog::RelationDelta> d =
          log.Since(source, state->kb_version);
      if (!d.has_value()) {
        reusable = false;
        break;
      }
      if (d->inserts.empty() && d->retracts.empty()) continue;
      datalog::DeltaRows& rows = delta[source];
      rows.inserts.insert(rows.inserts.end(), d->inserts.begin(),
                          d->inserts.end());
      rows.retracts.insert(rows.retracts.end(), d->retracts.begin(),
                           d->retracts.end());
    }
  }
  if (!reusable) {
    Result<datalog::Program> program =
        datalog::Parser::Parse(mapping.rule_text);
    if (!program.ok()) {
      return Status::InvalidArgument("mapping " + mapping.id +
                                     " has unparsable rule: " +
                                     program.status().message());
    }
    datalog::Database edb;
    for (const std::string& source : mapping.source_relations) {
      const Relation* rel = kb.FindRelation(source);
      if (rel != nullptr) edb.LoadRelation(*rel);
    }
    datalog::DifferentialOptions options;
    options.eval.planner = planner_;
    options.max_delta_fraction = max_delta_fraction;
    auto eval = std::make_unique<datalog::DifferentialEvaluator>(
        std::move(program).value(), options);
    VADA_RETURN_IF_ERROR(eval->Prepare());
    VADA_RETURN_IF_ERROR(eval->Initialize(edb));
    state->eval = std::move(eval);
    state->rule_text = mapping.rule_text;
    ++state->full_inits;
  } else if (!delta.empty()) {
    VADA_RETURN_IF_ERROR(state->eval->ApplyDelta(delta));
  }
  state->kb_version = kb.global_version();
  state->rewind_epoch = log.rewind_epoch();

  // Same result construction as Execute: the maintained database is
  // row-equal to a from-scratch evaluation (the differential fuzz
  // proves it), and the sort erases any row-order difference.
  std::vector<Tuple> sorted =
      state->eval->database().facts(mapping.result_predicate);
  std::sort(sorted.begin(), sorted.end());
  Relation out(Schema(mapping.result_predicate, target.attributes()));
  for (const Tuple& t : sorted) {
    if (t.size() != target.arity()) {
      return Status::Internal("mapping " + mapping.id +
                              " produced tuple of wrong arity");
    }
    VADA_RETURN_IF_ERROR(out.InsertUnchecked(t));
  }
  return out;
}

Result<Relation> MappingExecutor::ExecuteUnion(
    const std::vector<Mapping>& mappings, const Schema& target,
    const KnowledgeBase& kb, const std::string& result_name) const {
  Relation out(Schema(result_name, target.attributes()));
  for (const Mapping& m : mappings) {
    Result<Relation> part = Execute(m, target, kb);
    if (!part.ok()) return part.status();
    for (const Tuple& t : part.value().rows()) {
      VADA_RETURN_IF_ERROR(out.InsertUnchecked(t));
    }
  }
  return out;
}

}  // namespace vada
