#ifndef VADA_MATCH_MATCH_TYPES_H_
#define VADA_MATCH_MATCH_TYPES_H_

#include <string>
#include <vector>

#include "kb/relation.h"

namespace vada {

/// One attribute-correspondence hypothesis between a source attribute and
/// a target attribute, with a confidence score in [0, 1].
struct MatchCandidate {
  std::string source_relation;
  std::string source_attribute;
  std::string target_relation;
  std::string target_attribute;
  double score = 0.0;
  std::string matcher;  ///< which matcher produced the score

  std::string ToString() const;
};

/// Renders candidates as the KB control relation
/// match(source_relation, source_attribute, target_relation,
/// target_attribute, score, matcher) that mapping generation depends on
/// (Table 1 of the paper).
Relation MatchesToRelation(const std::vector<MatchCandidate>& matches,
                           const std::string& relation_name = "match");

/// Parses the relation written by MatchesToRelation back into structs.
Result<std::vector<MatchCandidate>> MatchesFromRelation(const Relation& rel);

/// Keeps, for every (source_relation, source_attribute, target_attribute)
/// triple, only the highest-scoring candidate.
std::vector<MatchCandidate> BestPerPair(std::vector<MatchCandidate> matches);

/// Enforces a 1:1 assignment per source relation: greedily picks the
/// highest-scoring candidate, discarding candidates whose source or
/// target attribute is already taken within that relation pair. Drops
/// candidates below `threshold`.
std::vector<MatchCandidate> GreedyOneToOne(std::vector<MatchCandidate> matches,
                                           double threshold);

}  // namespace vada

#endif  // VADA_MATCH_MATCH_TYPES_H_
