#include "match/instance_matcher.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace vada {

namespace {

struct ColumnProfile {
  std::set<std::string> distinct;  // rendered non-null values
  size_t numeric_count = 0;
  size_t non_null_count = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

ColumnProfile ProfileColumn(const Relation& rel, size_t index,
                            size_t max_distinct) {
  ColumnProfile p;
  double sum = 0.0;
  double sq = 0.0;
  for (const Tuple& row : rel.rows()) {
    const Value& v = row.at(index);
    if (v.is_null()) continue;
    ++p.non_null_count;
    if (p.distinct.size() < max_distinct) {
      p.distinct.insert(v.ToString());
    }
    std::optional<double> d = v.AsDouble();
    if (d.has_value()) {
      ++p.numeric_count;
      sum += *d;
      sq += *d * *d;
    }
  }
  if (p.numeric_count > 0) {
    p.mean = sum / static_cast<double>(p.numeric_count);
    double var = sq / static_cast<double>(p.numeric_count) - p.mean * p.mean;
    p.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return p;
}

double OverlapScore(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.distinct.empty() || b.distinct.empty()) return 0.0;
  size_t inter = 0;
  for (const std::string& v : a.distinct) {
    if (b.distinct.count(v) > 0) ++inter;
  }
  size_t uni = a.distinct.size() + b.distinct.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Similarity of numeric distributions via normalised distance of means
/// and spreads; 0 when either column is mostly non-numeric.
double ProfileScore(const ColumnProfile& a, const ColumnProfile& b) {
  if (a.non_null_count == 0 || b.non_null_count == 0) return 0.0;
  double a_frac = static_cast<double>(a.numeric_count) / a.non_null_count;
  double b_frac = static_cast<double>(b.numeric_count) / b.non_null_count;
  if (a_frac < 0.8 || b_frac < 0.8) return 0.0;
  double scale = std::max({std::fabs(a.mean), std::fabs(b.mean), a.stddev,
                           b.stddev, 1e-9});
  double mean_term = 1.0 - std::min(1.0, std::fabs(a.mean - b.mean) / scale);
  double spread_term =
      1.0 - std::min(1.0, std::fabs(a.stddev - b.stddev) / scale);
  return 0.5 * (mean_term + spread_term);
}

/// Combined score of two already-computed profiles (the shared core of
/// ColumnScore and Match).
double ScoreProfiles(const ColumnProfile& sp, const ColumnProfile& tp,
                     const InstanceMatcherOptions& options) {
  double overlap = OverlapScore(sp, tp);
  double profile = ProfileScore(sp, tp);
  if (profile <= 0.0) return overlap;
  double wsum = options.weight_overlap + options.weight_profile;
  return (options.weight_overlap * overlap +
          options.weight_profile * profile) /
         (wsum > 0.0 ? wsum : 1.0);
}

}  // namespace

InstanceMatcher::InstanceMatcher(InstanceMatcherOptions options)
    : options_(options) {}

double InstanceMatcher::ColumnScore(const Relation& source,
                                    const std::string& source_attr,
                                    const Relation& target,
                                    const std::string& target_attr) const {
  std::optional<size_t> si = source.schema().AttributeIndex(source_attr);
  std::optional<size_t> ti = target.schema().AttributeIndex(target_attr);
  if (!si.has_value() || !ti.has_value()) return 0.0;
  ColumnProfile sp = ProfileColumn(source, *si, options_.max_distinct_values);
  ColumnProfile tp = ProfileColumn(target, *ti, options_.max_distinct_values);
  return ScoreProfiles(sp, tp, options_);
}

std::vector<MatchCandidate> InstanceMatcher::Match(
    const Relation& source, const Relation& target_instances,
    const std::string& target_relation_name,
    const std::vector<std::pair<std::string, std::string>>&
        target_attribute_of) const {
  auto mapped_name = [&](const std::string& instance_attr) -> std::string {
    for (const auto& [from, to] : target_attribute_of) {
      if (from == instance_attr) return to.empty() ? instance_attr : to;
    }
    return instance_attr;
  };

  // Profile every column once: the pairwise loop below would otherwise
  // re-scan (and re-render) each column per opposite-side attribute,
  // which was quadratic in attribute count times linear in rows.
  std::vector<ColumnProfile> source_profiles;
  source_profiles.reserve(source.schema().arity());
  for (size_t i = 0; i < source.schema().arity(); ++i) {
    source_profiles.push_back(
        ProfileColumn(source, i, options_.max_distinct_values));
  }
  std::vector<ColumnProfile> target_profiles;
  target_profiles.reserve(target_instances.schema().arity());
  for (size_t i = 0; i < target_instances.schema().arity(); ++i) {
    target_profiles.push_back(
        ProfileColumn(target_instances, i, options_.max_distinct_values));
  }

  std::vector<MatchCandidate> out;
  for (size_t si = 0; si < source.schema().arity(); ++si) {
    const Attribute& sa = source.schema().attributes()[si];
    for (size_t ti = 0; ti < target_instances.schema().arity(); ++ti) {
      const Attribute& ta = target_instances.schema().attributes()[ti];
      double score =
          ScoreProfiles(source_profiles[si], target_profiles[ti], options_);
      if (score < options_.min_score) continue;
      MatchCandidate m;
      m.source_relation = source.name();
      m.source_attribute = sa.name;
      m.target_relation = target_relation_name;
      m.target_attribute = mapped_name(ta.name);
      m.score = score;
      m.matcher = "instance";
      out.push_back(std::move(m));
    }
  }
  return BestPerPair(std::move(out));
}

}  // namespace vada
