#include "match/combiner.h"

#include <map>
#include <tuple>

namespace vada {

namespace {
double WeightFor(const CombinerOptions& options, const std::string& matcher) {
  for (const auto& [name, w] : options.matcher_weights) {
    if (name == matcher) return w;
  }
  return 1.0;
}
}  // namespace

std::vector<MatchCandidate> CombineMatches(
    const std::vector<MatchCandidate>& candidates,
    const CombinerOptions& options) {
  using Key = std::tuple<std::string, std::string, std::string, std::string>;
  struct Acc {
    double weighted_sum = 0.0;
    double weight = 0.0;
    const MatchCandidate* any = nullptr;
  };
  std::map<Key, Acc> acc;
  for (const MatchCandidate& m : candidates) {
    Key key{m.source_relation, m.source_attribute, m.target_relation,
            m.target_attribute};
    double w = WeightFor(options, m.matcher);
    Acc& a = acc[key];
    a.weighted_sum += w * m.score;
    a.weight += w;
    a.any = &m;
  }
  std::vector<MatchCandidate> merged;
  merged.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    MatchCandidate m = *a.any;
    m.score = (a.weight > 0.0) ? a.weighted_sum / a.weight : 0.0;
    m.matcher = "combined";
    merged.push_back(std::move(m));
  }
  return GreedyOneToOne(std::move(merged), options.threshold);
}

}  // namespace vada
