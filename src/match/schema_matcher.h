#ifndef VADA_MATCH_SCHEMA_MATCHER_H_
#define VADA_MATCH_SCHEMA_MATCHER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "kb/schema.h"
#include "match/match_types.h"

namespace vada {

/// Options for name-based schema matching.
struct SchemaMatcherOptions {
  /// Candidates scoring below this are not reported.
  double min_score = 0.35;
  /// Weights of the combined name score (normalised internally).
  double weight_exact = 1.0;
  double weight_jaro_winkler = 0.45;
  double weight_qgram = 0.25;
  double weight_token = 0.30;
  /// Extra synonym groups merged with the built-in dictionary.
  std::vector<std::set<std::string>> extra_synonyms;
  /// Disable the built-in synonym dictionary (ablation switch).
  bool use_builtin_synonyms = true;
};

/// Name-based schema matcher (paper §2.1: "attribute correspondences may
/// need to be derived by schema matchers"). Scores every source/target
/// attribute pair with a weighted combination of exact/lowercase match,
/// Jaro-Winkler, q-gram Jaccard and token-set similarity, with synonym
/// normalisation ("zip" ~ "postcode", "beds" ~ "bedrooms", ...).
class SchemaMatcher {
 public:
  explicit SchemaMatcher(SchemaMatcherOptions options = SchemaMatcherOptions());

  /// All candidates >= min_score, best-per-pair deduplicated.
  std::vector<MatchCandidate> Match(const Schema& source,
                                    const Schema& target) const;

  /// Name-pair score in [0, 1]; exposed for tests and ablations.
  double NameScore(const std::string& source_name,
                   const std::string& target_name) const;

 private:
  /// Canonical synonym-group id for `token`, or `token` itself.
  std::string CanonicalToken(const std::string& token) const;

  SchemaMatcherOptions options_;
  std::map<std::string, std::string> synonym_canon_;  // token -> group id
};

}  // namespace vada

#endif  // VADA_MATCH_SCHEMA_MATCHER_H_
