#include "match/schema_matcher.h"

#include <algorithm>
#include <set>

#include "common/similarity.h"
#include "common/strings.h"

namespace vada {

namespace {

/// Built-in synonym groups for the property/open-data domain plus common
/// schema vocabulary. First element is the canonical token.
const std::vector<std::vector<const char*>>& BuiltinSynonymGroups() {
  static const std::vector<std::vector<const char*>>* groups =
      new std::vector<std::vector<const char*>>{
          {"postcode", "zip", "zipcode", "postalcode", "postal"},
          {"price", "cost", "amount", "value"},
          {"street", "road", "address", "addr"},
          {"type", "category", "kind", "class"},
          {"bedrooms", "beds", "bedroom", "rooms"},
          {"crime", "crimerank", "deprivation", "safety"},
          {"description", "details", "summary", "text"},
          {"city", "town", "locality"},
          {"name", "title", "label"},
          {"id", "identifier", "key"},
      };
  return *groups;
}

}  // namespace

SchemaMatcher::SchemaMatcher(SchemaMatcherOptions options)
    : options_(std::move(options)) {
  auto add_group = [this](const std::string& canon,
                          const std::string& member) {
    synonym_canon_[member] = canon;
  };
  if (options_.use_builtin_synonyms) {
    for (const std::vector<const char*>& group : BuiltinSynonymGroups()) {
      std::string canon = group[0];
      for (const char* member : group) add_group(canon, member);
    }
  }
  for (const std::set<std::string>& group : options_.extra_synonyms) {
    if (group.empty()) continue;
    const std::string& canon = *group.begin();
    for (const std::string& member : group) add_group(canon, member);
  }
}

std::string SchemaMatcher::CanonicalToken(const std::string& token) const {
  auto it = synonym_canon_.find(token);
  return it == synonym_canon_.end() ? token : it->second;
}

double SchemaMatcher::NameScore(const std::string& source_name,
                                const std::string& target_name) const {
  std::string s = ToLower(source_name);
  std::string t = ToLower(target_name);
  if (s.empty() || t.empty()) return 0.0;

  // Canonicalised token sets (synonym-aware).
  std::vector<std::string> s_tokens = TokenizeIdentifier(source_name);
  std::vector<std::string> t_tokens = TokenizeIdentifier(target_name);
  for (std::string& tok : s_tokens) tok = CanonicalToken(tok);
  for (std::string& tok : t_tokens) tok = CanonicalToken(tok);

  // Whole-name canonicalisation ("zip" -> "postcode") for the exact part.
  // Joined token forms make "post_code" equal "postcode".
  std::string s_joined;
  for (const std::string& tok : s_tokens) s_joined += tok;
  std::string t_joined;
  for (const std::string& tok : t_tokens) t_joined += tok;
  std::string s_canon = CanonicalToken(s_joined.empty() ? s : s_joined);
  std::string t_canon = CanonicalToken(t_joined.empty() ? t : t_joined);

  double exact =
      (CanonicalToken(s) == CanonicalToken(t) || s_canon == t_canon) ? 1.0
                                                                     : 0.0;
  double jw = JaroWinklerSimilarity(s, t);
  double qg = QGramJaccard(s, t, 3);
  double tok = TokenDice(s_tokens, t_tokens);
  // Containment ("numberOfBedrooms" covers "bedrooms"): overlap coefficient
  // of the canonical token sets.
  double overlap = 0.0;
  {
    std::set<std::string> ss(s_tokens.begin(), s_tokens.end());
    std::set<std::string> ts(t_tokens.begin(), t_tokens.end());
    size_t inter = 0;
    for (const std::string& x : ss) {
      if (ts.count(x) > 0) ++inter;
    }
    size_t smaller = std::min(ss.size(), ts.size());
    if (smaller > 0) {
      overlap = static_cast<double>(inter) / static_cast<double>(smaller);
    }
  }
  tok = std::max(tok, 0.8 * overlap);

  double wsum = options_.weight_exact + options_.weight_jaro_winkler +
                options_.weight_qgram + options_.weight_token;
  if (wsum <= 0.0) return 0.0;
  double combined =
      (options_.weight_exact * exact + options_.weight_jaro_winkler * jw +
       options_.weight_qgram * qg + options_.weight_token * tok) /
      wsum;
  // An exact (canonical) name match should dominate noisy partial scores;
  // full token containment ("numberOfBedrooms" vs "bedrooms") is strong
  // but clearly weaker evidence.
  if (exact > 0.0) return std::max(combined, 0.95);
  if (overlap >= 1.0 && !s_tokens.empty() && !t_tokens.empty()) {
    return std::max(combined, 0.55);
  }
  return combined;
}

std::vector<MatchCandidate> SchemaMatcher::Match(const Schema& source,
                                                 const Schema& target) const {
  std::vector<MatchCandidate> out;
  for (const Attribute& sa : source.attributes()) {
    for (const Attribute& ta : target.attributes()) {
      double score = NameScore(sa.name, ta.name);
      if (score < options_.min_score) continue;
      MatchCandidate m;
      m.source_relation = source.relation_name();
      m.source_attribute = sa.name;
      m.target_relation = target.relation_name();
      m.target_attribute = ta.name;
      m.score = score;
      m.matcher = "schema_name";
      out.push_back(std::move(m));
    }
  }
  return BestPerPair(std::move(out));
}

}  // namespace vada
