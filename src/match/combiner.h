#ifndef VADA_MATCH_COMBINER_H_
#define VADA_MATCH_COMBINER_H_

#include <vector>

#include "match/match_types.h"

namespace vada {

/// Options for combining evidence from several matchers.
struct CombinerOptions {
  /// Relative weight per matcher name; unknown matchers get weight 1.
  std::vector<std::pair<std::string, double>> matcher_weights = {
      {"schema_name", 1.0}, {"instance", 1.2}, {"feedback", 2.0}};
  /// Final 1:1 assignment threshold.
  double threshold = 0.45;
};

/// Merges candidates from multiple matchers into a single consolidated
/// candidate per correspondence (weighted mean of the available
/// evidence), then enforces a greedy 1:1 assignment per source relation.
///
/// This implements the paper's pattern of several transducers per
/// activity (schema vs instance matching) feeding one set of `match`
/// facts in the knowledge base.
std::vector<MatchCandidate> CombineMatches(
    const std::vector<MatchCandidate>& candidates,
    const CombinerOptions& options = CombinerOptions());

}  // namespace vada

#endif  // VADA_MATCH_COMBINER_H_
