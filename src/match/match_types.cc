#include "match/match_types.h"

#include <algorithm>
#include <map>
#include <set>

namespace vada {

std::string MatchCandidate::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", score);
  return source_relation + "." + source_attribute + " ~ " + target_relation +
         "." + target_attribute + " (" + buf + ", " + matcher + ")";
}

Relation MatchesToRelation(const std::vector<MatchCandidate>& matches,
                           const std::string& relation_name) {
  Relation rel(Schema::Untyped(relation_name,
                               {"source_relation", "source_attribute",
                                "target_relation", "target_attribute",
                                "score", "matcher"}));
  for (const MatchCandidate& m : matches) {
    rel.InsertUnchecked(Tuple(
        {Value::String(m.source_relation), Value::String(m.source_attribute),
         Value::String(m.target_relation), Value::String(m.target_attribute),
         Value::Double(m.score), Value::String(m.matcher)}));
  }
  return rel;
}

Result<std::vector<MatchCandidate>> MatchesFromRelation(const Relation& rel) {
  if (rel.schema().arity() != 6) {
    return Status::InvalidArgument("match relation must have arity 6, got " +
                                   rel.schema().ToString());
  }
  std::vector<MatchCandidate> out;
  for (const Tuple& t : rel.rows()) {
    for (size_t i : {0, 1, 2, 3, 5}) {
      if (t.at(i).type() != ValueType::kString) {
        return Status::InvalidArgument("match tuple has non-string field: " +
                                       t.ToString());
      }
    }
    std::optional<double> score = t.at(4).AsDouble();
    if (!score.has_value()) {
      return Status::InvalidArgument("match tuple has non-numeric score: " +
                                     t.ToString());
    }
    MatchCandidate m;
    m.source_relation = t.at(0).string_value();
    m.source_attribute = t.at(1).string_value();
    m.target_relation = t.at(2).string_value();
    m.target_attribute = t.at(3).string_value();
    m.score = *score;
    m.matcher = t.at(5).string_value();
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<MatchCandidate> BestPerPair(std::vector<MatchCandidate> matches) {
  std::map<std::tuple<std::string, std::string, std::string>, MatchCandidate>
      best;
  for (MatchCandidate& m : matches) {
    auto key = std::make_tuple(m.source_relation, m.source_attribute,
                               m.target_attribute);
    auto it = best.find(key);
    if (it == best.end() || m.score > it->second.score) {
      best[key] = std::move(m);
    }
  }
  std::vector<MatchCandidate> out;
  out.reserve(best.size());
  for (auto& [key, m] : best) out.push_back(std::move(m));
  return out;
}

std::vector<MatchCandidate> GreedyOneToOne(std::vector<MatchCandidate> matches,
                                           double threshold) {
  std::stable_sort(matches.begin(), matches.end(),
                   [](const MatchCandidate& a, const MatchCandidate& b) {
                     return a.score > b.score;
                   });
  std::set<std::pair<std::string, std::string>> used_source;  // rel, attr
  std::set<std::pair<std::string, std::string>> used_target;  // rel, attr
  std::vector<MatchCandidate> out;
  for (MatchCandidate& m : matches) {
    if (m.score < threshold) continue;
    std::pair<std::string, std::string> src{m.source_relation,
                                            m.source_attribute};
    // Target slots are per source relation: two different sources may both
    // map onto Target.price, but within one source relation each target
    // attribute is filled at most once.
    std::pair<std::string, std::string> tgt{
        m.source_relation + "\x1f" + m.target_relation, m.target_attribute};
    if (used_source.count(src) > 0 || used_target.count(tgt) > 0) continue;
    used_source.insert(src);
    used_target.insert(tgt);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace vada
