#ifndef VADA_MATCH_INSTANCE_MATCHER_H_
#define VADA_MATCH_INSTANCE_MATCHER_H_

#include <string>
#include <vector>

#include "kb/relation.h"
#include "match/match_types.h"

namespace vada {

/// Options for instance-based matching.
struct InstanceMatcherOptions {
  double min_score = 0.25;
  /// Distinct values sampled per column (caps cost on large relations).
  size_t max_distinct_values = 2000;
  /// Weight of value-overlap vs numeric-profile evidence when both apply.
  double weight_overlap = 0.7;
  double weight_profile = 0.3;
};

/// Instance matcher (Table 1: "Instance Matching | Src/Target Instances"):
/// scores attribute correspondences from the data itself. Works against
/// any relation holding instances for the target side — typically
/// reference/master/example data from the data context.
///
/// Evidence combined per column pair:
///  * value overlap: Jaccard of distinct rendered values;
///  * numeric profile: similarity of (mean, stddev) for numeric columns.
class InstanceMatcher {
 public:
  explicit InstanceMatcher(
      InstanceMatcherOptions options = InstanceMatcherOptions());

  /// Scores every (source attribute, target attribute) pair using the
  /// instances in `source` and `target_instances`. `target_attribute_of`
  /// maps attribute names of `target_instances` to target-schema names
  /// (empty string = same name); candidates are reported against
  /// `target_relation_name`.
  std::vector<MatchCandidate> Match(
      const Relation& source, const Relation& target_instances,
      const std::string& target_relation_name,
      const std::vector<std::pair<std::string, std::string>>&
          target_attribute_of = {}) const;

  /// Column-pair score in [0, 1]; exposed for tests/ablation.
  double ColumnScore(const Relation& source, const std::string& source_attr,
                     const Relation& target, const std::string& target_attr)
      const;

 private:
  InstanceMatcherOptions options_;
};

}  // namespace vada

#endif  // VADA_MATCH_INSTANCE_MATCHER_H_
