// A command-line wrangler: point it at CSV files, name a target schema,
// get a wrangled CSV back — the session API as a shippable tool.
//
//   wrangle_csv --target name,price,postcode
//               --source shops_a.csv --source shops_b.csv
//               [--reference addr.csv --bind postcode=pc --bind street=str]
//               [--out result.csv] [--save-kb kb_dir] [--trace] [--explain N]
//
// Every flag maps 1:1 onto a WranglingSession call, so this file doubles
// as an API walkthrough.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.h"
#include "kb/csv.h"
#include "kb/persistence.h"
#include "wrangler/session.h"

namespace {

using namespace vada;

struct Args {
  std::vector<std::string> target_attributes;
  std::vector<std::string> source_paths;
  std::string reference_path;
  std::vector<ContextCorrespondence> bindings;
  std::string out_path;
  std::string save_kb_dir;
  bool trace = false;
  int explain_rows = 0;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: wrangle_csv --target a,b,c --source f.csv [--source g.csv ...]\n"
      "                   [--reference ref.csv --bind target_attr=ref_attr ...]\n"
      "                   [--out result.csv] [--save-kb dir] [--trace]\n"
      "                   [--explain N]\n");
}

/// Relation name from a path: "data/shops_a.csv" -> "shops_a".
std::string RelationNameFor(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = (slash == std::string::npos) ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos) base = base.substr(0, dot);
  std::string out;
  for (char c : base) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out.empty() ? "source" : out;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--target") {
      const char* v = next();
      if (v == nullptr) return false;
      args->target_attributes = Split(v, ',');
    } else if (flag == "--source") {
      const char* v = next();
      if (v == nullptr) return false;
      args->source_paths.push_back(v);
    } else if (flag == "--reference") {
      const char* v = next();
      if (v == nullptr) return false;
      args->reference_path = v;
    } else if (flag == "--bind") {
      const char* v = next();
      if (v == nullptr) return false;
      std::vector<std::string> parts = Split(v, '=');
      if (parts.size() != 2) return false;
      args->bindings.push_back({parts[0], parts[1]});
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_path = v;
    } else if (flag == "--save-kb") {
      const char* v = next();
      if (v == nullptr) return false;
      args->save_kb_dir = v;
    } else if (flag == "--trace") {
      args->trace = true;
    } else if (flag == "--explain") {
      const char* v = next();
      if (v == nullptr) return false;
      args->explain_rows = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return !args->target_attributes.empty() && !args->source_paths.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  WranglingSession session;
  Status s = session.SetTargetSchema(
      Schema::Untyped("target", args.target_attributes));
  if (!s.ok()) {
    std::fprintf(stderr, "target schema: %s\n", s.ToString().c_str());
    return 1;
  }

  for (const std::string& path : args.source_paths) {
    Result<Relation> rel = ReadCsvFile(path, RelationNameFor(path));
    if (!rel.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   rel.status().ToString().c_str());
      return 1;
    }
    s = session.AddSource(rel.value());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "source %s: %zu rows\n", rel.value().name().c_str(),
                 rel.value().size());
  }

  if (!args.reference_path.empty()) {
    if (args.bindings.empty()) {
      std::fprintf(stderr,
                   "--reference needs at least one --bind target=ref\n");
      return 2;
    }
    Result<Relation> ref =
        ReadCsvFile(args.reference_path, RelationNameFor(args.reference_path));
    if (!ref.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.reference_path.c_str(),
                   ref.status().ToString().c_str());
      return 1;
    }
    s = session.AddDataContext(ref.value(), RelationRole::kReference,
                               args.bindings);
    if (!s.ok()) {
      std::fprintf(stderr, "data context: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "wrangling failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const Relation* result = session.result();
  if (result == nullptr) {
    std::fprintf(stderr, "no result produced\n");
    return 1;
  }
  std::fprintf(stderr, "result: %zu rows via mappings:", result->size());
  for (const std::string& id : session.selected_mappings()) {
    std::fprintf(stderr, " %s", id.c_str());
  }
  std::fprintf(stderr, "\n");

  if (args.out_path.empty()) {
    std::fputs(ToCsv(*result).c_str(), stdout);
  } else {
    s = WriteCsvFile(*result, args.out_path);
    if (!s.ok()) {
      std::fprintf(stderr, "write %s: %s\n", args.out_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }

  if (!args.save_kb_dir.empty()) {
    s = SaveKnowledgeBase(session.kb(), args.save_kb_dir);
    if (!s.ok()) {
      std::fprintf(stderr, "save-kb: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "knowledge base saved to %s\n",
                 args.save_kb_dir.c_str());
  }

  if (args.trace) {
    std::fprintf(stderr, "%s", session.trace().ToString().c_str());
  }
  for (int i = 0; i < args.explain_rows &&
                  i < static_cast<int>(result->size()); ++i) {
    Result<std::string> explanation =
        session.ExplainResultRow(result->rows()[i]);
    if (explanation.ok()) {
      std::fprintf(stderr, "%s", explanation.value().c_str());
    }
  }
  return 0;
}
