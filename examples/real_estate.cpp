// The paper's demonstration scenario (SIGMOD'17 §3), end to end: property
// sales + open government data, wrangled pay-as-you-go through the four
// steps of the demo protocol:
//   1. automatic bootstrapping   (sources + target schema only)
//   2. + data context            (address reference data)
//   3. + feedback                (flagging wrong bedroom counts)
//   4. + user context            (pairwise priorities, Figure 2(d))
// After each step the result is re-evaluated against the generator's
// ground truth so the pay-as-you-go improvement is visible.
#include <cstdio>

#include "extract/open_government.h"
#include "extract/real_estate.h"
#include "wrangler/evaluation.h"
#include "wrangler/session.h"

namespace {

void PrintStep(const char* title, const vada::WranglingSession& session,
               const vada::GroundTruth& truth) {
  const vada::Relation* result = session.result();
  std::printf("\n===== %s =====\n", title);
  if (result == nullptr) {
    std::printf("(no result)\n");
    return;
  }
  vada::ScenarioEvaluation eval = vada::EvaluateScenario(*result, truth);
  std::printf("%s\n", eval.ToString().c_str());
  std::printf("selected mappings:");
  for (const std::string& id : session.selected_mappings()) {
    std::printf(" %s", id.c_str());
  }
  std::printf("\nsample rows:\n%s", result->ToDebugString(4).c_str());
}

}  // namespace

int main() {
  using namespace vada;

  // --- The hidden universe and the extracted sources (Figure 2(a)). ---
  PropertyUniverseOptions uopts;
  uopts.num_properties = 300;
  uopts.num_postcodes = 40;
  uopts.seed = 2017;
  GroundTruth truth = GeneratePropertyUniverse(uopts);

  ExtractionErrorOptions rightmove_errors;
  rightmove_errors.seed = 1;
  rightmove_errors.coverage = 0.75;
  Relation rightmove = ExtractRightmove(truth, rightmove_errors);

  ExtractionErrorOptions onthemarket_errors;
  onthemarket_errors.seed = 2;
  onthemarket_errors.coverage = 0.6;
  Relation onthemarket = ExtractOnthemarket(truth, onthemarket_errors);

  Relation deprivation = GenerateDeprivation(truth);

  // --- Step 1: automatic bootstrapping. ---
  WranglingSession session;
  Status s = session.SetTargetSchema(Schema::Untyped(
      "property", {"type", "description", "street", "postcode", "bedrooms",
                   "price", "crimerank"}));
  if (s.ok()) s = session.AddSource(rightmove);
  if (s.ok()) s = session.AddSource(onthemarket);
  if (s.ok()) s = session.AddSource(deprivation);
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "step 1 failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintStep("step 1: automatic bootstrapping", session, truth);

  // --- Step 2: data context (Figure 2(c), address reference data). ---
  Relation address = GenerateAddressReference(truth);
  s = session.AddDataContext(
      address, RelationRole::kReference,
      {{"street", "street"}, {"postcode", "postcode"}});
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "step 2 failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintStep("step 2: + data context (reference addresses, CFD repair)",
            session, truth);
  const Relation* cfds = session.kb().FindRelation("cfd");
  std::printf("learned CFDs: %zu\n", cfds == nullptr ? 0 : cfds->size());

  // --- Step 3: feedback (flag implausible bedroom counts). ---
  {
    const Relation* result = session.result();
    size_t bed = *result->schema().AttributeIndex("bedrooms");
    size_t flagged = 0;
    for (const Tuple& row : result->rows()) {
      std::optional<double> v = row.at(bed).AsDouble();
      if (v.has_value() && *v > 8.0) {
        s = session.AddFeedback(
            FeedbackItem{row, "bedrooms", FeedbackPolarity::kIncorrect});
        if (!s.ok()) break;
        if (++flagged >= 15) break;
      }
    }
    std::printf("\nuser flags %zu bedroom values as incorrect\n", flagged);
  }
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "step 3 failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintStep("step 3: + feedback (match scores revised, mappings re-run)",
            session, truth);

  // --- Step 4: user context (Figure 2(d)). ---
  UserContext uc;
  s = uc.AddStatement("completeness", "crimerank", "very strongly",
                      "accuracy", "property.type");
  if (s.ok()) {
    s = uc.AddStatement("consistency", "property", "strongly", "completeness",
                        "property.bedrooms");
  }
  if (s.ok()) {
    s = uc.AddStatement("completeness", "property.street", "moderately",
                        "completeness", "property.postcode");
  }
  if (s.ok()) s = session.SetUserContext(uc);
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "step 4 failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintStep("step 4: + user context (AHP-weighted mapping selection)",
            session, truth);

  // --- The browsable trace the demo promises. ---
  std::printf("\n===== orchestration trace =====\n%s",
              session.trace().ToString().c_str());
  std::printf("\ntransducer executions:\n");
  for (const auto& [name, count] : session.trace().ExecutionCounts()) {
    std::printf("  %-24s %zu\n", name.c_str(), count);
  }
  return 0;
}
