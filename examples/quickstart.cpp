// Quickstart: wrangle two small CSV sources into a target schema in ~30
// lines of VADA API. Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "kb/csv.h"
#include "wrangler/session.h"

namespace {

// Two tiny "extracted" sources with differently named columns.
const char* kShopA =
    "name,price,postcode\n"
    "Espresso Bar,3,M1 2AB\n"
    "Tea House,2,M4 5CD\n";

const char* kShopB =
    "title,cost,zip\n"
    "Juice Stop,4,M1 2AB\n"
    "Tea House,2,M4 5CD\n";

const char* kRatings =
    "postcode,rating\n"
    "M1 2AB,5\n"
    "M4 5CD,3\n";

}  // namespace

int main() {
  using namespace vada;

  // 1. Parse the sources (in real deployments these come from extraction).
  Relation shop_a = ParseCsv(kShopA, "shop_a").value();
  Relation shop_b = ParseCsv(kShopB, "shop_b").value();
  Relation ratings = ParseCsv(kRatings, "ratings").value();

  // 2. Declare what you want: the target schema.
  Schema target =
      Schema::Untyped("shops", {"name", "price", "postcode", "rating"});

  // 3. Hand everything to a wrangling session and run. The network
  //    transducer orchestrates matching, mapping generation/execution,
  //    quality estimation, selection and fusion automatically.
  WranglingSession session;
  Status s = session.SetTargetSchema(target);
  if (s.ok()) s = session.AddSource(shop_a);
  if (s.ok()) s = session.AddSource(shop_b);
  if (s.ok()) s = session.AddSource(ratings);
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "wrangling failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. Inspect the result and how it was produced.
  const Relation* result = session.result();
  std::printf("=== wrangled result ===\n%s\n",
              result->ToDebugString(/*max_rows=*/10).c_str());
  std::printf("=== mappings considered ===\n");
  for (const Mapping& m : session.mappings()) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  std::printf("=== orchestration trace (%zu steps) ===\n%s",
              session.trace().size(), session.trace().ToString().c_str());
  return 0;
}
