// A second domain: wrangling open-government air-quality measurements
// with cryptically named source columns. Schema matching alone cannot
// resolve columns called "f1".."f4"; associating reference data (the data
// context) enables the instance matcher, which identifies them from the
// values. This is the paper's point (ii): the impact of data context.
#include <cstdio>

#include "common/rng.h"
#include "wrangler/session.h"

namespace {

using vada::Relation;
using vada::Schema;
using vada::Tuple;
using vada::Value;

/// Synthetic sensor feed with opaque column names: f1=station id,
/// f2=pollutant, f3=reading, f4=postcode.
Relation MakeSensorFeed(int rows, uint64_t seed,
                        const std::vector<std::string>& stations,
                        const std::vector<std::string>& postcodes) {
  vada::Rng rng(seed);
  Relation rel(Schema::Untyped("sensor_feed", {"f1", "f2", "f3", "f4"}));
  const char* pollutants[] = {"NO2", "PM2.5", "PM10", "O3"};
  for (int i = 0; i < rows; ++i) {
    size_t st = rng.Index(stations.size());
    rel.InsertUnchecked(
        Tuple({Value::String(stations[st]),
               Value::String(pollutants[rng.Index(4)]),
               Value::Double(5.0 + 60.0 * rng.UniformDouble()),
               Value::String(postcodes[st % postcodes.size()])}));
  }
  return rel;
}

/// Reference data: the official station registry.
Relation MakeStationRegistry(const std::vector<std::string>& stations,
                             const std::vector<std::string>& postcodes) {
  Relation rel(Schema::Untyped("station_registry", {"station", "postcode"}));
  for (size_t i = 0; i < stations.size(); ++i) {
    rel.InsertUnchecked(Tuple({Value::String(stations[i]),
                               Value::String(postcodes[i % postcodes.size()])}));
  }
  return rel;
}

}  // namespace

int main() {
  using namespace vada;

  std::vector<std::string> stations = {"MAN-Picc", "MAN-Oxford", "SAL-Quays",
                                       "STK-Centre", "BUR-East"};
  std::vector<std::string> postcodes = {"M1 1AA", "M13 9PL", "M50 3AZ",
                                        "SK1 3TA", "BL9 0AA"};

  Relation feed = MakeSensorFeed(400, 99, stations, postcodes);
  Relation registry = MakeStationRegistry(stations, postcodes);

  WranglingSession session;
  Status s = session.SetTargetSchema(Schema::Untyped(
      "air_quality", {"station", "pollutant", "reading", "postcode"}));
  if (s.ok()) s = session.AddSource(feed);
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const Relation* bootstrap = session.result();
  std::printf("=== bootstrap (schema matching only) ===\n");
  std::printf("result rows: %zu  (cryptic names f1..f4 defeat name-based "
              "matching)\n",
              bootstrap == nullptr ? 0 : bootstrap->size());

  // Attach the station registry as reference data: instance matching can
  // now identify f1 as the station column and f4 as the postcode column.
  s = session.AddDataContext(registry, RelationRole::kReference,
                             {{"station", "station"},
                              {"postcode", "postcode"}});
  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "data-context run failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  std::printf("\n=== with data context (instance matching enabled) ===\n");
  const Relation* matches = session.kb().FindRelation("match");
  if (matches != nullptr) {
    std::printf("consolidated matches:\n%s", matches->ToDebugString(12).c_str());
  }
  const Relation* result = session.result();
  std::printf("result rows: %zu\n%s", result == nullptr ? 0 : result->size(),
              result == nullptr ? "" : result->ToDebugString(5).c_str());

  std::printf("\norchestration executions:\n");
  for (const auto& [name, count] : session.trace().ExecutionCounts()) {
    std::printf("  %-24s %zu\n", name.c_str(), count);
  }
  return 0;
}
