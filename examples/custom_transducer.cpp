// Extensibility walkthrough (paper §2.3/§4): adding new components as
// transducers without touching the engine. Three extension points:
//   1. a Vadalog-implemented transducer (pure rules);
//   2. a C++ FunctionTransducer wrapping "an external system";
//   3. running them inside a standard wrangling session, where the
//      network transducer schedules them like any built-in component.
#include <cstdio>
#include <memory>

#include "wrangler/session.h"

int main() {
  using namespace vada;

  // A toy deployment: one source of delivery orders.
  Relation orders(
      Schema::Untyped("orders", {"order_id", "city", "weight", "priority"}));
  auto add = [&orders](int id, const char* city, double kg, const char* pr) {
    orders.InsertUnchecked(Tuple({Value::Int(id), Value::String(city),
                                  Value::Double(kg), Value::String(pr)}));
  };
  add(1, "manchester", 1.5, "express");
  add(2, "leeds", 12.0, "standard");
  add(3, "manchester", 3.0, "express");
  add(4, "york", 40.0, "standard");
  add(5, "leeds", 2.0, "express");

  WranglingSession session;
  Status s = session.SetTargetSchema(Schema::Untyped(
      "shipment", {"order_id", "city", "weight", "priority"}));
  if (s.ok()) s = session.AddSource(orders);

  // Extension 1: a transducer written entirely in Vadalog. Its input
  // dependency and its logic are both Datalog; it becomes eligible as
  // soon as the wrangled result materialises, and derives per-city
  // express counts (aggregation) into a new KB relation.
  if (s.ok()) {
    s = session.AddTransducer(std::make_unique<VadalogTransducer>(
        "express_stats", "analytics",
        "ready() :- sys_relation_nonempty(\"wrangled_result\").",
        "express(I, C) :- wrangled_result(I, C, W, P), P = \"express\".\n"
        "express_per_city(C, count<I>) :- express(I, C).\n",
        std::vector<std::string>{"express_per_city"}));
  }

  // Extension 2: a C++ transducer "wrapping an external system" (here, a
  // pretend routing service) that flags heavy shipments. Note the
  // idempotent write through ReplaceRelationIfChanged — the contract that
  // makes dynamic orchestration terminate.
  if (s.ok()) {
    s = session.AddTransducer(std::make_unique<FunctionTransducer>(
        "routing_service", "analytics",
        "ready() :- sys_relation_nonempty(\"wrangled_result\").",
        [](KnowledgeBase* kb) -> Status {
          const Relation* result = kb->FindRelation("wrangled_result");
          if (result == nullptr) return Status::OK();
          Relation heavy(Schema::Untyped("needs_freight", {"order_id"}));
          size_t weight = *result->schema().AttributeIndex("weight");
          size_t id = *result->schema().AttributeIndex("order_id");
          for (const Tuple& row : result->rows()) {
            std::optional<double> kg = row.at(weight).AsDouble();
            if (kg.has_value() && *kg > 10.0) {
              VADA_RETURN_IF_ERROR(
                  heavy.InsertUnchecked(Tuple({row.at(id)})));
            }
          }
          return kb->ReplaceRelationIfChanged(heavy);
        }));
  }

  if (s.ok()) s = session.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const Relation* stats = session.kb().FindRelation("express_per_city");
  std::printf("=== express_per_city (Vadalog transducer output) ===\n%s",
              stats == nullptr ? "(none)\n"
                               : stats->ToDebugString().c_str());
  const Relation* freight = session.kb().FindRelation("needs_freight");
  std::printf("\n=== needs_freight (wrapped-service output) ===\n%s",
              freight == nullptr ? "(none)\n"
                                 : freight->ToDebugString().c_str());

  std::printf("\nboth custom transducers were scheduled dynamically:\n");
  for (const TraceEvent& e : session.trace().events()) {
    if (e.activity == "analytics") {
      std::printf("  %s\n", e.ToString().c_str());
    }
  }
  return 0;
}
